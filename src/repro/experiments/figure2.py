"""Figure 2 reproduction: mean TM and SM similarity to ground truth."""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.paper_values import (
    PAPER_FIGURE2_HIGHLIGHTS,
    TECHNIQUE_ORDER,
)
from repro.experiments.runner import ResultMatrix


@dataclass
class Figure2:
    """Mean similarity per technique, across both benchmarks combined.

    Keys of ``tm``/``sm`` are the measured techniques, in column order."""

    tm: dict[str, float]
    sm: dict[str, float]


def compute_figure2(
    matrices: list[ResultMatrix], techniques: list[str] | None = None
) -> Figure2:
    tm: dict[str, float] = {}
    sm: dict[str, float] = {}
    for technique in techniques or TECHNIQUE_ORDER:
        tm_values: list[float] = []
        sm_values: list[float] = []
        for matrix in matrices:
            tm_values.extend(matrix.similarity_series(technique, "tm"))
            sm_values.extend(matrix.similarity_series(technique, "sm"))
        tm[technique] = sum(tm_values) / len(tm_values) if tm_values else 0.0
        sm[technique] = sum(sm_values) / len(sm_values) if sm_values else 0.0
    return Figure2(tm=tm, sm=sm)


def render_figure2(figure: Figure2) -> str:
    """A text bar chart of the Figure 2 values."""
    lines = ["Figure 2 — similarity to ground truth (measured)", ""]
    lines.append(f"{'technique':<24}{'TM':>7}{'SM':>7}  bars (TM #, SM =)")
    for technique in figure.tm:
        tm = figure.tm[technique]
        sm = figure.sm[technique]
        tm_bar = "#" * round(tm * 30)
        sm_bar = "=" * round(sm * 30)
        lines.append(f"{technique:<24}{tm:>7.3f}{sm:>7.3f}  |{tm_bar}")
        lines.append(f"{'':<38}  |{sm_bar}")
    lines.append("")
    lines.append("Paper highlights: ATR TM=0.985 SM=0.997; "
                 "Multi-Round_Generic TM=0.938 SM=0.943")
    for technique, values in PAPER_FIGURE2_HIGHLIGHTS.items():
        if technique not in figure.tm:
            continue
        lines.append(
            f"  measured {technique}: TM={figure.tm[technique]:.3f} "
            f"(paper {values['tm']:.3f}), SM={figure.sm[technique]:.3f} "
            f"(paper {values['sm']:.3f})"
        )
    traditional = [
        t for t in ("ARepair", "ICEBAR", "BeAFix", "ATR") if t in figure.sm
    ]
    if traditional:
        best_traditional = max(traditional, key=lambda t: figure.sm[t])
        lines.append(
            f"Best-SM traditional technique (measured): {best_traditional}"
        )
    return "\n".join(lines)
