"""Programmatic ablation studies over the design choices DESIGN.md lists.

Each ablation runs a controlled sweep on a sample of benchmark
specifications and reports success/cost trade-offs:

- :func:`beafix_pruning_ablation` — semantic pruning on/off;
- :func:`icebar_budget_ablation` — refinement-budget sweep;
- :func:`multi_round_budget_ablation` — dialogue round-budget sweep;
- :func:`suite_size_ablation` — AUnit suite size vs. ARepair overfitting;
- :func:`parallel_speedup_ablation` — experiment-engine ``jobs`` scaling
  (and a determinism check: REP totals must not move with parallelism).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analyzer.analyzer import Analyzer
from repro.benchmarks.faults import FaultySpec
from repro.llm.mock_gpt import GPT4_PROFILE, MockGPT
from repro.llm.prompts import FeedbackLevel
from repro.metrics.rep import rep
from repro.repair.arepair import ARepair
from repro.repair.base import RepairTask
from repro.repair.beafix import BeAFix, BeAFixConfig
from repro.repair.icebar import Icebar, IcebarConfig
from repro.repair.multi_round import MultiRoundConfig, MultiRoundLLM
from repro.testing.generation import generate_suite


@dataclass
class AblationPoint:
    """One configuration's aggregate outcome."""

    label: str
    repaired: int
    total: int
    oracle_queries: int = 0
    candidates_explored: int = 0
    elapsed: float = 0.0

    @property
    def rate(self) -> float:
        return self.repaired / self.total if self.total else 0.0


@dataclass
class AblationResult:
    """A full sweep."""

    name: str
    points: list[AblationPoint] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"== ablation: {self.name} =="]
        for point in self.points:
            extras = ""
            if point.oracle_queries:
                extras = (
                    f"  oracle-queries={point.oracle_queries}"
                    f"  candidates={point.candidates_explored}"
                )
            if point.elapsed:
                extras += f"  elapsed={point.elapsed:.1f}s"
            lines.append(
                f"  {point.label:<28}{point.repaired}/{point.total}"
                f" ({point.rate:.0%}){extras}"
            )
        return "\n".join(lines)


def _score(result, spec: FaultySpec, task: RepairTask) -> int:
    return rep(result.final_source(task), spec.truth_source)


def beafix_pruning_ablation(specs: list[FaultySpec]) -> AblationResult:
    """Does counterexample pruning change success or only cost?"""
    sweep = AblationResult(name="BeAFix semantic pruning")
    for prune in (True, False):
        repaired = queries = candidates = 0
        for spec in specs:
            task = RepairTask.from_source(spec.faulty_source)
            config = BeAFixConfig(prune=prune)
            if not prune:
                config.max_oracle_queries = 400
            result = BeAFix(config).repair(task)
            repaired += _score(result, spec, task)
            queries += result.oracle_queries
            candidates += result.candidates_explored
        sweep.points.append(
            AblationPoint(
                label=f"prune={prune}",
                repaired=repaired,
                total=len(specs),
                oracle_queries=queries,
                candidates_explored=candidates,
            )
        )
    return sweep


def icebar_budget_ablation(
    specs: list[FaultySpec], budgets: tuple[int, ...] = (1, 2, 5)
) -> AblationResult:
    """How many counterexample refinements does ICEBAR need?"""
    sweep = AblationResult(name="ICEBAR refinement budget")
    for budget in budgets:
        repaired = 0
        for index, spec in enumerate(specs):
            task = RepairTask.from_source(spec.faulty_source)
            suite = generate_suite(
                Analyzer(spec.truth_source), positives=3, negatives=3, seed=index
            )
            result = Icebar(suite, IcebarConfig(max_refinements=budget)).repair(task)
            repaired += _score(result, spec, task)
        sweep.points.append(
            AblationPoint(
                label=f"max_refinements={budget}",
                repaired=repaired,
                total=len(specs),
            )
        )
    return sweep


def multi_round_budget_ablation(
    specs: list[FaultySpec],
    rounds: tuple[int, ...] = (1, 2, 3),
    feedback: FeedbackLevel = FeedbackLevel.GENERIC,
    seed: int = 0,
) -> AblationResult:
    """Success versus the number of dialogue rounds."""
    sweep = AblationResult(name=f"Multi-Round rounds ({feedback.value} feedback)")
    for budget in rounds:
        repaired = 0
        for index, spec in enumerate(specs):
            task = RepairTask.from_source(spec.faulty_source)
            tool = MultiRoundLLM(
                MockGPT(seed=seed + index, profile=GPT4_PROFILE),
                feedback,
                config=MultiRoundConfig(max_rounds=budget),
            )
            result = tool.repair(task)
            repaired += _score(result, spec, task)
        sweep.points.append(
            AblationPoint(
                label=f"max_rounds={budget}", repaired=repaired, total=len(specs)
            )
        )
    return sweep


def parallel_speedup_ablation(
    benchmark: str = "arepair",
    scale: float = 0.2,
    jobs_values: tuple[int, ...] = (1, 2, 4),
    techniques: tuple[str, ...] = ("ATR", "BeAFix"),
    seed: int = 0,
) -> AblationResult:
    """Wall-clock scaling of the experiment engine over ``--jobs``.

    Runs the same small matrix with each jobs value (cache disabled so
    every point recomputes) and reports elapsed time.  The repaired
    totals double as a determinism check: parallelism is an execution
    detail and must never move a result.
    """
    from repro.experiments.runner import RunConfig, run_matrix

    sweep = AblationResult(name=f"experiment engine parallelism ({benchmark})")
    for jobs in jobs_values:
        started = time.perf_counter()
        matrix = run_matrix(
            RunConfig(
                benchmark=benchmark,
                scale=scale,
                seed=seed,
                techniques=techniques,
                jobs=jobs,
                use_cache=False,
            )
        )
        sweep.points.append(
            AblationPoint(
                label=f"jobs={jobs}",
                repaired=sum(matrix.rep_count(t) for t in techniques),
                total=len(matrix.specs) * len(techniques),
                elapsed=time.perf_counter() - started,
            )
        )
    return sweep


def suite_size_ablation(
    specs: list[FaultySpec], sizes: tuple[int, ...] = (1, 3, 6)
) -> AblationResult:
    """ARepair's REP versus AUnit suite size: overfitting made visible."""
    sweep = AblationResult(name="ARepair AUnit suite size")
    for size in sizes:
        repaired = 0
        for index, spec in enumerate(specs):
            task = RepairTask.from_source(spec.faulty_source)
            suite = generate_suite(
                Analyzer(spec.truth_source),
                positives=size,
                negatives=size,
                seed=index,
            )
            result = ARepair(suite).repair(task)
            repaired += _score(result, spec, task)
        sweep.points.append(
            AblationPoint(
                label=f"positives=negatives={size}",
                repaired=repaired,
                total=len(specs),
            )
        )
    return sweep
