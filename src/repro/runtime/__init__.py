"""Cross-cutting resilience runtime.

The production-facing substrate every layer leans on: a unified error
taxonomy (:mod:`~repro.runtime.errors`), cooperative resource budgets
(:mod:`~repro.runtime.budget`), deterministic retry
(:mod:`~repro.runtime.retry`), crash isolation
(:mod:`~repro.runtime.guard`), and durable atomic persistence
(:mod:`~repro.runtime.persist`).
"""

from repro.runtime.budget import Budget
from repro.runtime.errors import (
    BudgetExhaustedError,
    CacheCorruptionError,
    ReproError,
    TransientError,
    classify_exception,
)
from repro.runtime.guard import FailureRecord, capture_failure, summarize_failures
from repro.runtime.persist import atomic_write_json, load_json
from repro.runtime.retry import RetryPolicy, call_with_retry

__all__ = [
    "Budget",
    "BudgetExhaustedError",
    "CacheCorruptionError",
    "FailureRecord",
    "ReproError",
    "RetryPolicy",
    "TransientError",
    "atomic_write_json",
    "call_with_retry",
    "capture_failure",
    "classify_exception",
    "load_json",
    "summarize_failures",
]
