"""Crash isolation: turn exceptions into structured failure records.

A benchmark run is thousands of independent (specification, technique)
cells; one pathological mutant must cost one cell, not the whole matrix.
:func:`capture_failure` freezes an exception into a :class:`FailureRecord`
— error code, type, message, and the tail of the traceback — which the
runner accumulates and the report surfaces, so failures are *visible*
without being *fatal*.

Records must travel: across JSON cache round-trips and — since the
experiment engine fans out over a process pool — across pickle
boundaries, where the original exception (possibly holding sockets,
locks, or other unpicklable state) could not.  :func:`capture_failure`
therefore flattens everything to plain strings and JSON-safe context
values at capture time, in the worker, so a record is always safe to
ship home.
"""

from __future__ import annotations

import json
import traceback
from dataclasses import dataclass, field

from repro.runtime.errors import classify_exception


@dataclass
class FailureRecord:
    """One captured failure, serializable for caches and reports."""

    where: str
    """Which unit of work failed, e.g. ``"arepair/addr_1:BeAFix"``."""
    code: str
    exception: str
    message: str
    traceback_tail: str = ""
    context: dict = field(default_factory=dict)

    def brief(self) -> str:
        return f"{self.where}: [{self.code}] {self.message}"

    def to_json(self) -> dict:
        return {
            "where": self.where,
            "code": self.code,
            "exception": self.exception,
            "message": self.message,
            "traceback_tail": self.traceback_tail,
            "context": self.context,
        }

    @classmethod
    def from_json(cls, data: dict) -> "FailureRecord":
        return cls(
            where=data["where"],
            code=data["code"],
            exception=data["exception"],
            message=data["message"],
            traceback_tail=data.get("traceback_tail", ""),
            context=data.get("context", {}),
        )


def _jsonable(value):
    """Coerce a context value to something JSON- and pickle-safe."""
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


def capture_failure(
    where: str, error: BaseException, tail_lines: int = 4
) -> FailureRecord:
    """Freeze ``error`` into a record; never raises."""
    tail = ""
    tb = error.__traceback__
    if tb is not None:
        frames = traceback.format_tb(tb)
        tail = "".join(frames[-tail_lines:]).rstrip()
    context = {
        str(key): _jsonable(value)
        for key, value in dict(getattr(error, "context", {}) or {}).items()
    }
    return FailureRecord(
        where=where,
        code=classify_exception(error),
        exception=type(error).__name__,
        message=str(error) or type(error).__name__,
        traceback_tail=tail,
        context=context,
    )


def summarize_failures(failures: list[FailureRecord]) -> dict[str, int]:
    """Aggregate count per error code — the ops-dashboard view."""
    counts: dict[str, int] = {}
    for record in failures:
        counts[record.code] = counts.get(record.code, 0) + 1
    return dict(sorted(counts.items()))
