"""Cooperative resource budgets.

The SAT engine already bounds *one* solve call with a conflict limit; a
:class:`Budget` bounds a whole computation — an analyzer session, a repair
attempt, a benchmark row — across arbitrarily many solve calls.  Budgets
are charged in deterministic *steps* (so runs reproduce bit-for-bit) and
may additionally carry a wall-clock deadline for deployments where
determinism matters less than latency SLOs.

Charging an exhausted budget raises
:class:`~repro.runtime.errors.BudgetExhaustedError`; holders that prefer
to degrade gracefully probe :attr:`Budget.exhausted` instead.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.runtime.errors import BudgetExhaustedError


class Budget:
    """A deterministic step budget with an optional wall-clock deadline.

    ``steps=None`` means unlimited steps (only the deadline applies);
    ``wall_seconds=None`` means no deadline.  A budget with neither is
    legal and never exhausts — useful as a null object.
    """

    def __init__(
        self,
        steps: int | None = None,
        wall_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if steps is not None and steps < 0:
            raise ValueError("steps must be non-negative")
        if wall_seconds is not None and wall_seconds < 0:
            raise ValueError("wall_seconds must be non-negative")
        self._steps = steps
        self._clock = clock
        self._deadline = clock() + wall_seconds if wall_seconds is not None else None
        self.spent = 0

    @property
    def steps(self) -> int | None:
        return self._steps

    @property
    def remaining(self) -> int | None:
        """Steps left, or ``None`` when the step dimension is unlimited."""
        if self._steps is None:
            return None
        return max(self._steps - self.spent, 0)

    @property
    def exhausted(self) -> bool:
        """Non-raising probe; does not consume anything."""
        if self._steps is not None and self.spent >= self._steps:
            return True
        if self._deadline is not None and self._clock() >= self._deadline:
            return True
        return False

    def charge(self, units: int = 1, what: str = "step") -> None:
        """Consume ``units`` steps, raising once the budget is exceeded.

        The charge is recorded even when it overruns, so ``spent`` reflects
        attempted work in failure reports.
        """
        self.spent += units
        if self._steps is not None and self.spent > self._steps:
            raise BudgetExhaustedError(
                f"budget exhausted after {self.spent} {what}s (limit {self._steps})",
                context={"spent": self.spent, "limit": self._steps, "what": what},
            )
        # Deadline boundary matches `exhausted`: the instant the clock
        # *reaches* the deadline the budget is spent — probing and charging
        # must never disagree at the boundary.
        if self._deadline is not None and self._clock() >= self._deadline:
            raise BudgetExhaustedError(
                f"budget deadline passed after {self.spent} {what}s",
                context={"spent": self.spent, "what": what},
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Budget(spent={self.spent}, steps={self._steps})"
