"""Durable JSON persistence: atomic writes, schema stamps, tolerant reads.

Both cache layers (generated benchmarks, result matrices) share the same
failure modes: a process killed mid-write leaves a truncated file; a
format change leaves an incompatible one.  The contract here is

- :func:`atomic_write_json` never exposes a half-written file — it writes
  to a temporary sibling and atomically renames over the target;
- :func:`load_json` never returns garbage — anything unreadable,
  unparsable, or stamped with a different schema raises
  :class:`~repro.runtime.errors.CacheCorruptionError`, which callers
  treat as a cache miss.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro import chaos
from repro.runtime.errors import CacheCorruptionError

_SCHEMA_KEY = "schema"
_DATA_KEY = "data"


def _maybe_corrupt(tmp: Path, target: Path) -> None:
    """Chaos choke point: damage the temp file before the atomic rename.

    Models a write interrupted (``persist.truncate``) or scrambled
    (``persist.corrupt``) *before* the rename lands — the one window the
    atomic-write protocol cannot close, and exactly what the tolerant
    readers must absorb as a cache miss.  A no-op outside a chaos scope.
    """
    for site in ("persist.truncate", "persist.corrupt"):
        event = chaos.fire(site, path=target.name)
        if event is not None:
            tmp.write_bytes(
                chaos.mangle_bytes(tmp.read_bytes(), site, event.payload)
            )


def atomic_write_json(path: Path, payload: Any, schema: str | None = None) -> None:
    """Serialize ``payload`` to ``path`` without ever exposing a partial file.

    With ``schema``, the payload is wrapped in an envelope that
    :func:`load_json` verifies on the way back in.
    """
    if schema is not None:
        payload = {_SCHEMA_KEY: schema, _DATA_KEY: payload}
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with tmp.open("w") as handle:
            json.dump(payload, handle)
        _maybe_corrupt(tmp, path)
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # only on a failed dump/replace
            try:
                tmp.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass


def atomic_write_jsonl(
    path: Path, records: Any, schema: str | None = None
) -> None:
    """Write an iterable of JSON records, one per line, atomically.

    With ``schema``, the first line is a header object ``{"schema": ...}``
    that :func:`load_jsonl` verifies — the line-oriented analogue of the
    envelope :func:`atomic_write_json` wraps around a single payload.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with tmp.open("w") as handle:
            if schema is not None:
                handle.write(json.dumps({_SCHEMA_KEY: schema}) + "\n")
            for record in records:
                handle.write(json.dumps(record) + "\n")
        _maybe_corrupt(tmp, path)
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # only on a failed dump/replace
            try:
                tmp.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass


def load_jsonl(path: Path, schema: str | None = None) -> list[Any]:
    """Read a JSONL file back, raising :class:`CacheCorruptionError` on any
    defect (unreadable file, invalid line, missing or mismatched header)."""
    try:
        with path.open() as handle:
            lines = [line for line in handle if line.strip()]
    except (OSError, UnicodeDecodeError) as error:
        raise CacheCorruptionError(
            f"unreadable file {path.name}: {error}",
            context={"path": str(path)},
        ) from error
    try:
        records = [json.loads(line) for line in lines]
    except json.JSONDecodeError as error:
        raise CacheCorruptionError(
            f"invalid JSONL in {path.name}: {error}",
            context={"path": str(path)},
        ) from error
    if schema is None:
        return records
    if not records or not isinstance(records[0], dict) or _SCHEMA_KEY not in records[0]:
        raise CacheCorruptionError(
            f"file {path.name} has no schema header",
            context={"path": str(path), "expected": schema},
        )
    found = records[0][_SCHEMA_KEY]
    if found != schema:
        raise CacheCorruptionError(
            f"file {path.name} has schema {found!r}, expected {schema!r}",
            context={"path": str(path), "found": found, "expected": schema},
        )
    return records[1:]


def load_json(path: Path, schema: str | None = None) -> Any:
    """Read JSON back, raising :class:`CacheCorruptionError` on any defect.

    "Defect" covers unreadable files, invalid JSON, and — when ``schema``
    is given — a missing envelope or a different schema stamp (an *old*
    cache is as unusable as a corrupt one).
    """
    try:
        with path.open() as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as error:
        raise CacheCorruptionError(
            f"unreadable cache file {path.name}: {error}",
            context={"path": str(path)},
        ) from error
    if schema is None:
        return payload
    if not isinstance(payload, dict) or _SCHEMA_KEY not in payload:
        raise CacheCorruptionError(
            f"cache file {path.name} has no schema stamp",
            context={"path": str(path), "expected": schema},
        )
    found = payload[_SCHEMA_KEY]
    if found != schema:
        raise CacheCorruptionError(
            f"cache file {path.name} has schema {found!r}, expected {schema!r}",
            context={"path": str(path), "found": found, "expected": schema},
        )
    return payload.get(_DATA_KEY)
