"""Unified error taxonomy for the whole pipeline.

Every layer of the reproduction has historically raised its own exception
family (the Alloy front end raises :class:`~repro.alloy.errors.AlloyError`,
the SAT engine raises :class:`~repro.sat.solver.BudgetExceeded`, the LLM
response parser raises ``ExtractionError``, ...).  At scale — millions of
repair attempts across a fleet — the operational question is never "which
Python type was raised" but "which *class of failure* happened, and how
often".  This module provides:

- :class:`ReproError`, a base class whose instances carry a stable, dotted
  *error code* (``"cache.corrupt"``, ``"budget.exhausted"``) plus an
  arbitrary context mapping for structured logging;
- :func:`classify_exception`, which maps *any* exception — ours or a
  stdlib one — onto that code space so failure records aggregate cleanly.

Error codes are dotted paths, most-general segment first.  The first
segment is the failure domain:

========== ==========================================================
``spec``    the input specification is malformed (lex/parse/resolve)
``analysis`` the bounded analyzer could not finish (scope, budget, eval)
``solver``  the SAT engine itself gave up (conflict budget)
``llm``     the LLM protocol failed (extraction, transient transport)
``cache``   persisted state is unreadable
``io``      the operating system said no
``runtime`` the Python runtime hit a hard limit (recursion, memory)
``internal`` anything else — almost always a bug in this repository
========== ==========================================================
"""

from __future__ import annotations

import json
from typing import Any, Mapping


class ReproError(Exception):
    """Base class for structured errors raised by this repository.

    Subclasses set ``code`` as a class attribute; instances may override it
    and attach a ``context`` mapping that failure records serialize.
    """

    code = "internal"

    def __init__(
        self,
        message: str,
        *,
        code: str | None = None,
        context: Mapping[str, Any] | None = None,
    ) -> None:
        super().__init__(message)
        if code is not None:
            self.code = code
        self.context: dict[str, Any] = dict(context or {})


class BudgetExhaustedError(ReproError):
    """A cooperative resource budget ran out (see :mod:`repro.runtime.budget`)."""

    code = "budget.exhausted"


class CacheCorruptionError(ReproError):
    """A persisted cache file could not be read back.

    Callers treat this as "the cache does not exist": discard and
    regenerate.  It must never abort a run — a half-written file from a
    killed process is an expected state, not an invariant violation.
    """

    code = "cache.corrupt"


class TransientError(ReproError):
    """A failure that is expected to succeed on retry (network blips,
    rate limits, empty completions).  :mod:`repro.runtime.retry` treats
    this class — and nothing else — as retryable by default."""

    code = "transient"


class ShardTimeoutError(ReproError):
    """A shard blew its wall-clock deadline (``RunConfig.shard_timeout``).

    Raised cooperatively between cells, or synthesized by the process
    executor's watchdog when a worker goes quiet past the grace window.
    Timeout outcomes are an execution artifact, not a result: the runner
    excludes them from the result cache so a rerun with a roomier (or no)
    deadline recomputes the cells instead of inheriting the cutoff.
    """

    code = "shard.timeout"


_ALLOY_CODES = {
    "LexError": "spec.lex",
    "ParseError": "spec.parse",
    "ResolutionError": "spec.resolve",
    "AlloyTypeError": "spec.type",
    "LintError": "spec.lint",
    "ScopeError": "analysis.scope",
    "AnalysisBudgetError": "analysis.budget",
    "EvaluationError": "analysis.eval",
    "AlloyError": "spec.other",
}


def classify_exception(error: BaseException) -> str:
    """Map any exception onto the stable error-code space.

    Total: every input produces a code; unknown types land in
    ``internal.<typename>`` so new failure modes surface in aggregates
    instead of vanishing.
    """
    if isinstance(error, ReproError):
        return error.code
    name = type(error).__name__
    # The Alloy front end's hierarchy is matched by name walking the MRO so
    # that subclasses inherit their nearest ancestor's code.
    for klass in type(error).__mro__:
        if klass.__name__ in _ALLOY_CODES and _is_alloy_error(error):
            return _ALLOY_CODES[klass.__name__]
    if name == "BudgetExceeded":
        return "solver.budget"
    if name == "ExtractionError":
        return "llm.extract"
    if isinstance(error, RecursionError):
        return "runtime.recursion"
    if isinstance(error, MemoryError):
        return "runtime.memory"
    if isinstance(error, json.JSONDecodeError):
        return "cache.corrupt"
    if isinstance(error, (FileNotFoundError, PermissionError)):
        return "io.missing" if isinstance(error, FileNotFoundError) else "io.denied"
    if isinstance(error, OSError):
        return "io.error"
    if isinstance(error, (KeyboardInterrupt, SystemExit)):
        return "runtime.interrupt"
    return f"internal.{name}"


def _is_alloy_error(error: BaseException) -> bool:
    try:
        from repro.alloy.errors import AlloyError
    except ImportError:  # pragma: no cover - the front end always imports
        return False
    return isinstance(error, AlloyError)
