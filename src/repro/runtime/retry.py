"""Deterministic retry with exponential backoff.

Built for the LLM transport (real APIs rate-limit and drop connections)
but generic: any callable raising :class:`~repro.runtime.errors.TransientError`
can be wrapped.  Two properties matter for this repository:

- **determinism** — the backoff schedule is a pure function of the policy
  (no hidden clock reads, no process-global RNG).  Jitter — which fleet
  clients need so synchronized retries don't stampede a recovering
  backend — is opt-in via ``jitter_seed`` and *seeded*: the same seed
  always yields the same schedule, so even jittered runs reproduce;
- **injectable sleeping** — the default sleeper is ``None`` (no delay),
  which unit tests and the offline mock rely on; production adapters pass
  ``time.sleep``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.runtime.errors import TransientError

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts to make and how long to wait between them."""

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter_seed: int | None = None
    """``None`` (the default): no jitter — the exponential schedule is
    exact and byte-identical across runs.  An integer: each delay is
    scaled by a deterministic factor in [0.5, 1.0) drawn from
    ``sha256(seed:attempt)`` — decorrelated enough to spread a retrying
    fleet (give each client its own seed), still a pure function of the
    policy."""

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be at least 1")

    def _jitter_factor(self, attempt: int) -> float:
        digest = hashlib.sha256(
            f"{self.jitter_seed}:{attempt}".encode()
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / 2**64  # [0, 1)
        return 0.5 + 0.5 * unit

    def delay_for(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        delay = min(
            self.base_delay * self.multiplier ** (attempt - 1), self.max_delay
        )
        if self.jitter_seed is not None:
            delay *= self._jitter_factor(attempt)
        return delay

    def schedule(self) -> list[float]:
        """The full delay schedule — one entry per possible retry."""
        return [self.delay_for(i) for i in range(1, self.attempts)]


def call_with_retry(
    fn: Callable[[], T],
    *,
    policy: RetryPolicy | None = None,
    retry_on: tuple[type[BaseException], ...] = (TransientError,),
    sleep: Callable[[float], None] | None = None,
    on_retry: Callable[[int, float, BaseException], None] | None = None,
) -> T:
    """Invoke ``fn``, retrying on the declared transient exceptions.

    The final failure propagates unchanged so callers see the real error.
    ``on_retry(attempt, delay, error)`` fires before each sleep — the hook
    the runner uses to count retries in failure telemetry.
    """
    policy = policy or RetryPolicy()
    for attempt in range(1, policy.attempts + 1):
        try:
            return fn()
        except retry_on as error:
            if attempt == policy.attempts:
                raise
            delay = policy.delay_for(attempt)
            if on_retry is not None:
                on_retry(attempt, delay, error)
            if sleep is not None:
                sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
