"""A CDCL SAT solver.

This is the boolean engine underneath the bounded analyzer, playing the role
that MiniSat/SAT4J play underneath the real Alloy Analyzer.  Features:

- two-literal watching,
- first-UIP conflict analysis with clause learning,
- VSIDS activity-based decision heuristic (indexed max-heap) with phase saving,
- Luby-sequence restarts,
- incremental solving (clauses may be added between ``solve`` calls, which is
  how instance enumeration adds blocking clauses),
- assumption-based sessions (:class:`SolveSession`): clause groups guarded by
  selector literals, activated per ``solve`` call, retired when stale.

Literals are non-zero integers: ``+v`` for variable ``v``, ``-v`` for its
negation (DIMACS convention).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro import chaos, obs


@dataclass
class SolverStats:
    """Counters exposed for benchmarking and diagnostics."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned_clauses: int = 0
    restarts: int = 0

    def delta(self, since: "SolverStats") -> "SolverStats":
        """The per-call view: counts accumulated after ``since``."""
        return SolverStats(
            decisions=self.decisions - since.decisions,
            propagations=self.propagations - since.propagations,
            conflicts=self.conflicts - since.conflicts,
            learned_clauses=self.learned_clauses - since.learned_clauses,
            restarts=self.restarts - since.restarts,
        )

    def copy(self) -> "SolverStats":
        return SolverStats(
            decisions=self.decisions,
            propagations=self.propagations,
            conflicts=self.conflicts,
            learned_clauses=self.learned_clauses,
            restarts=self.restarts,
        )


class Unsatisfiable(Exception):
    """Raised internally when the formula is unsatisfiable at level 0."""


class BudgetExceeded(Exception):
    """Raised when a solve call exceeds its conflict limit."""


_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence
    (1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...)."""
    while True:
        k = 1
        while (1 << k) - 1 < i:
            k += 1
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1


class SatSolver:
    """An incremental CDCL solver over integer literals."""

    def __init__(self) -> None:
        self._num_vars = 0
        self._clauses: list[list[int]] = []
        self._watches: dict[int, list[int]] = {}
        self._values: list[int] = [0]  # 1-indexed by variable
        self._levels: list[int] = [0]
        self._reasons: list[int | None] = [None]
        self._phases: list[bool] = [False]
        self._activity: list[float] = [0.0]
        self._activity_inc = 1.0
        self._heap: list[tuple[float, int]] = []  # lazy (-activity, var)
        self._trail: list[int] = []
        self._trail_limits: list[int] = []
        self._propagate_head = 0
        self._root_conflict = False
        self.stats = SolverStats()
        self.last_solve = SolverStats()
        """Counters for the most recent :meth:`solve` call only.  ``stats``
        accumulates across the solver's lifetime (instance enumeration adds
        clauses and re-solves), so per-call diagnostics must come from here
        — reading ``stats`` after the second call double-counts."""

    # -- problem construction ------------------------------------------------

    def new_var(self) -> int:
        """Allocate and return a fresh variable."""
        self._num_vars += 1
        var = self._num_vars
        self._values.append(_UNASSIGNED)
        self._levels.append(0)
        self._reasons.append(None)
        self._phases.append(False)
        self._activity.append(0.0)
        heapq.heappush(self._heap, (-0.0, var))
        self._watches[var] = []
        self._watches[-var] = []
        return var

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Attached (non-unit) clauses, including learned ones."""
        return len(self._clauses)

    def _ensure_vars(self, lits: list[int]) -> None:
        highest = max((abs(l) for l in lits), default=0)
        while self._num_vars < highest:
            self.new_var()

    def add_clause(self, lits: list[int]) -> None:
        """Add a clause; duplicate literals are merged, tautologies dropped."""
        if self._trail_limits:
            # Incremental use: drop back to the root level before mutating.
            self._backtrack(0)
        self._ensure_vars(lits)
        seen: set[int] = set()
        reduced: list[int] = []
        for lit in lits:
            if lit == 0:
                raise ValueError("literal 0 is not allowed")
            if -lit in seen:
                return  # tautology
            if lit in seen:
                continue
            if self._value(lit) == _TRUE and self._levels[abs(lit)] == 0:
                return  # already satisfied forever
            if self._value(lit) == _FALSE and self._levels[abs(lit)] == 0:
                continue  # literal permanently false
            seen.add(lit)
            reduced.append(lit)
        if not reduced:
            self._root_conflict = True
            return
        if len(reduced) == 1:
            if not self._enqueue(reduced[0], None):
                self._root_conflict = True
            return
        self._attach_clause(reduced)

    def _attach_clause(self, lits: list[int]) -> int:
        index = len(self._clauses)
        self._clauses.append(lits)
        self._watches[lits[0]].append(index)
        self._watches[lits[1]].append(index)
        return index

    # -- assignment helpers --------------------------------------------------

    def _value(self, lit: int) -> int:
        value = self._values[abs(lit)]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value if lit > 0 else -value

    def _decision_level(self) -> int:
        return len(self._trail_limits)

    def _enqueue(self, lit: int, reason: int | None) -> bool:
        current = self._value(lit)
        if current == _TRUE:
            return True
        if current == _FALSE:
            return False
        var = abs(lit)
        self._values[var] = _TRUE if lit > 0 else _FALSE
        self._levels[var] = self._decision_level()
        self._reasons[var] = reason
        self._phases[var] = lit > 0
        self._trail.append(lit)
        return True

    def _propagate(self) -> int | None:
        """Unit propagation; returns a conflicting clause index or ``None``."""
        while self._propagate_head < len(self._trail):
            lit = self._trail[self._propagate_head]
            self._propagate_head += 1
            self.stats.propagations += 1
            false_lit = -lit
            watch_list = self._watches[false_lit]
            new_watch_list: list[int] = []
            conflict: int | None = None
            for position, clause_index in enumerate(watch_list):
                clause = self._clauses[clause_index]
                # Normalize: watched literals are clause[0] and clause[1].
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                if self._value(clause[0]) == _TRUE:
                    new_watch_list.append(clause_index)
                    continue
                # Look for a replacement watch.
                replaced = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != _FALSE:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches[clause[1]].append(clause_index)
                        replaced = True
                        break
                if replaced:
                    continue
                new_watch_list.append(clause_index)
                if not self._enqueue(clause[0], clause_index):
                    conflict = clause_index
                    new_watch_list.extend(watch_list[position + 1 :])
                    break
            self._watches[false_lit] = new_watch_list
            if conflict is not None:
                return conflict
        return None

    # -- conflict analysis ---------------------------------------------------

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._activity_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._activity_inc *= 1e-100
            # Every queue entry now records a pre-rescale activity, so none
            # would pass the freshness check: rebuild from the live values.
            self._heap = [
                (-self._activity[v], v)
                for v in range(1, self._num_vars + 1)
                if self._values[v] == _UNASSIGNED
            ]
            heapq.heapify(self._heap)
        elif self._values[var] == _UNASSIGNED:
            heapq.heappush(self._heap, (-self._activity[var], var))

    def _decay_activity(self) -> None:
        self._activity_inc /= 0.95

    def _analyze(self, conflict_index: int) -> tuple[list[int], int]:
        """First-UIP analysis: returns (learned clause, backjump level)."""
        learned: list[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        implied = 0  # the literal whose reason clause we are expanding
        clause = self._clauses[conflict_index]
        trail_index = len(self._trail) - 1
        current_level = self._decision_level()

        while True:
            for clause_lit in clause:
                if implied != 0 and clause_lit == implied:
                    continue  # skip the literal this clause implied
                var = abs(clause_lit)
                if seen[var] or self._levels[var] == 0:
                    continue
                seen[var] = True
                self._bump_var(var)
                if self._levels[var] == current_level:
                    counter += 1
                else:
                    learned.append(clause_lit)
            # Find the next seen literal on the trail.
            while not seen[abs(self._trail[trail_index])]:
                trail_index -= 1
            implied = self._trail[trail_index]
            var = abs(implied)
            seen[var] = False
            trail_index -= 1
            counter -= 1
            if counter == 0:
                learned[0] = -implied
                break
            reason = self._reasons[var]
            assert reason is not None, "non-decision literal must have a reason"
            clause = self._clauses[reason]

        if len(learned) == 1:
            return learned, 0
        backjump = max(self._levels[abs(l)] for l in learned[1:])
        # Put a literal from the backjump level in the second watch slot.
        for k in range(1, len(learned)):
            if self._levels[abs(learned[k])] == backjump:
                learned[1], learned[k] = learned[k], learned[1]
                break
        return learned, backjump

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        limit = self._trail_limits[level]
        heap = self._heap
        activity = self._activity
        for lit in reversed(self._trail[limit:]):
            var = abs(lit)
            self._values[var] = _UNASSIGNED
            self._reasons[var] = None
            heapq.heappush(heap, (-activity[var], var))
        del self._trail[limit:]
        del self._trail_limits[level:]
        self._propagate_head = len(self._trail)

    # -- decisions -----------------------------------------------------------
    #
    # Branching uses a VSIDS max-heap over ``(-activity, var)`` entries with
    # lazy removal.  The tuple order is the total order (activity descending,
    # variable index ascending), so the heap minimum is exactly the variable
    # the old O(vars) linear scan picked — decision sequences are
    # bit-identical to the scan.  The index into the heap is implicit: an
    # entry is current iff its recorded activity equals the variable's live
    # activity (activities only grow between rescales, so a bump strands the
    # old entry, which the pop loop discards).  Every unassigned variable
    # always has a current entry: pushed on allocation, on bump, and on
    # unassignment in ``_backtrack``; rescaling rebuilds the queue outright.

    def _pick_branch_var(self) -> int | None:
        heap = self._heap
        values = self._values
        activity = self._activity
        while heap:
            negact, var = heapq.heappop(heap)
            if values[var] == _UNASSIGNED and activity[var] == -negact:
                return var
        return None

    # -- main loop -----------------------------------------------------------

    def solve(
        self,
        assumptions: list[int] | None = None,
        conflict_limit: int | None = None,
    ) -> bool:
        """Solve under optional assumptions; returns satisfiability.

        After a SAT answer, :meth:`model` returns the satisfying assignment.
        The solver may be re-used: add clauses and call ``solve`` again.
        ``conflict_limit`` bounds this call's conflicts; exceeding it raises
        :class:`BudgetExceeded` (a deterministic stand-in for a timeout).
        """
        before = self.stats.copy()
        with obs.span("sat.solve") as span:
            try:
                sat = self._search(assumptions, conflict_limit)
            finally:
                # Per-call accounting must survive every exit — UNSAT by
                # assumptions, root conflicts, and BudgetExceeded all
                # unwind through here, so the span closes and last_solve
                # is fresh even when this call aborts.
                self.last_solve = delta = self.stats.delta(before)
                metrics = obs.get_metrics()
                if metrics.enabled:
                    obs.counter("sat.solves").inc()
                    obs.counter("sat.decisions").inc(delta.decisions)
                    obs.counter("sat.propagations").inc(delta.propagations)
                    obs.counter("sat.conflicts").inc(delta.conflicts)
                    obs.counter("sat.learned_clauses").inc(delta.learned_clauses)
                    obs.counter("sat.restarts").inc(delta.restarts)
                    obs.histogram("sat.conflicts_per_solve").observe(
                        delta.conflicts
                    )
                span.set(
                    conflicts=delta.conflicts,
                    decisions=delta.decisions,
                    vars=self._num_vars,
                    clauses=len(self._clauses),
                )
            span.set(sat=sat)
            return sat

    def _search(
        self,
        assumptions: list[int] | None,
        conflict_limit: int | None,
    ) -> bool:
        self._backtrack(0)
        if self._root_conflict:
            return False
        if self._propagate() is not None:
            self._root_conflict = True
            return False
        if chaos.fire("sat.budget", vars=self._num_vars) is not None:
            # Injected overrun: the deterministic stand-in for a solver
            # timeout, raised exactly where a real conflict-limit overrun
            # would leave the solver (backtracked to the root).
            raise BudgetExceeded("chaos: injected conflict-budget overrun")

        assumptions = list(assumptions or [])
        # Restart scheduling is per-call: a reused solver restarts the Luby
        # sequence on every solve.  (It used to index the sequence with the
        # lifetime restart count, so later calls on a reused solver began
        # deep in the sequence with enormous restart intervals.)
        restarts_this_call = 0
        conflicts_until_restart = 32 * _luby(restarts_this_call + 1)
        conflicts_at_last_restart = self.stats.conflicts
        conflicts_at_start = self.stats.conflicts

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                if (
                    conflict_limit is not None
                    and self.stats.conflicts - conflicts_at_start > conflict_limit
                ):
                    self._backtrack(0)
                    raise BudgetExceeded(
                        f"exceeded {conflict_limit} conflicts"
                    )
                if self._decision_level() == 0:
                    self._root_conflict = True
                    return False
                if self._decision_level() <= len(assumptions):
                    # Conflict forced purely by assumptions.
                    self._backtrack(0)
                    return False
                learned, backjump = self._analyze(conflict)
                self._backtrack(max(backjump, len(assumptions)))
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        self._root_conflict = True
                        return False
                else:
                    event = chaos.fire("sat.flip", size=len(learned))
                    if event is not None:
                        # Corrupt one non-asserting literal of the learned
                        # clause.  The solver stays sound for SAT answers
                        # (a full model still satisfies every original
                        # clause) but may prune valid assignments — the
                        # downstream-verification failure mode a learned-
                        # clause bug would cause.
                        k = 1 + event.payload % (len(learned) - 1)
                        learned[k] = -learned[k]
                    index = self._attach_clause(learned)
                    self.stats.learned_clauses += 1
                    self._enqueue(learned[0], index)
                self._decay_activity()
                if (
                    self.stats.conflicts - conflicts_at_last_restart
                    >= conflicts_until_restart
                ):
                    self.stats.restarts += 1
                    restarts_this_call += 1
                    conflicts_at_last_restart = self.stats.conflicts
                    conflicts_until_restart = 32 * _luby(restarts_this_call + 1)
                    self._backtrack(len(assumptions))
                continue

            # Apply pending assumptions as pseudo-decisions.
            level = self._decision_level()
            if level < len(assumptions):
                lit = assumptions[level]
                value = self._value(lit)
                if value == _FALSE:
                    self._backtrack(0)
                    return False
                self._trail_limits.append(len(self._trail))
                if value == _UNASSIGNED:
                    self._enqueue(lit, None)
                continue

            var = self._pick_branch_var()
            if var is None:
                return True
            self.stats.decisions += 1
            self._trail_limits.append(len(self._trail))
            lit = var if self._phases[var] else -var
            self._enqueue(lit, None)

    def model(self) -> set[int]:
        """The set of variables assigned true by the last SAT answer."""
        return {
            var
            for var in range(1, self._num_vars + 1)
            if self._values[var] == _TRUE
        }

    def model_list(self) -> list[int]:
        """The last model as a list of literals, one per variable."""
        return [
            var if self._values[var] == _TRUE else -var
            for var in range(1, self._num_vars + 1)
        ]


class SolveSession:
    """Assumption-based incremental solving over one persistent solver.

    Repair tools evaluate hundreds of candidates that differ from the base
    specification by a single edited paragraph.  A session keeps one
    :class:`SatSolver` alive across those queries: shared structure is added
    once with :meth:`add_clause`, per-candidate structure is guarded by a
    *selector* variable (:meth:`new_selector` / :meth:`add_clause_under`) and
    activated per query via ``solve(assumptions=[...])``.  Learned clauses,
    VSIDS activity, and saved phases all carry across calls, so conflicts
    derived while checking one candidate keep pruning the search for every
    later one.  A selector that will never be assumed again can be
    :meth:`retire`\\ d, which permanently satisfies its clause group and lets
    level-0 simplification drop it from future propagation.

    The classic one-shot flow (``SatSolver()`` + ``add_clause`` + ``solve``)
    is unchanged; this class is a thin coordination layer above it.
    """

    def __init__(self, solver: SatSolver | None = None) -> None:
        self.solver = solver if solver is not None else SatSolver()
        self._selectors: list[int] = []
        self._retired: set[int] = set()
        self._carried_clauses = 0
        self.solves = 0

    # -- construction --------------------------------------------------------

    def new_var(self) -> int:
        return self.solver.new_var()

    def add_clause(self, lits: list[int]) -> None:
        """Add a permanent (unguarded) clause."""
        self.solver.add_clause(lits)

    def new_selector(self) -> int:
        """Allocate a selector variable guarding a retirable clause group."""
        selector = self.solver.new_var()
        self._selectors.append(selector)
        return selector

    @property
    def num_selectors(self) -> int:
        return len(self._selectors)

    def add_clause_under(self, selector: int, lits: list[int]) -> None:
        """Add a clause that is active only when ``selector`` is assumed."""
        self.solver.add_clause([-selector] + list(lits))

    def retire(self, selector: int) -> None:
        """Permanently disable a selector's clause group.

        The unit clause ``[-selector]`` satisfies every guarded clause at
        level 0; the selector must never be assumed true afterwards.
        """
        if selector in self._retired:
            return
        self._retired.add(selector)
        self.solver.add_clause([-selector])

    # -- solving -------------------------------------------------------------

    def solve(
        self,
        assumptions: list[int] | None = None,
        conflict_limit: int | None = None,
    ) -> bool:
        """Solve with the given selectors (or arbitrary literals) assumed."""
        assumptions = list(assumptions or [])
        assumed = {abs(lit) for lit in assumptions}
        # Steer inactive selectors false via phase saving so dormant clause
        # groups do not drag the search through irrelevant structure.
        phases = self.solver._phases
        for selector in self._selectors:
            if selector not in assumed and selector not in self._retired:
                phases[selector] = False
        if self.solves and obs.get_metrics().enabled:
            # Every clause that survived from the previous query —
            # translation fragments and learned clauses alike — is work a
            # from-scratch solve would have redone.
            obs.counter("sat.session.reused_clauses").inc(self._carried_clauses)
        self.solves += 1
        try:
            return self.solver.solve(assumptions, conflict_limit)
        finally:
            self._carried_clauses = self.solver.num_clauses

    def model(self) -> set[int]:
        """The set of variables assigned true by the last SAT answer."""
        return self.solver.model()
