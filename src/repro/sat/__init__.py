"""From-scratch SAT machinery: CDCL solver, circuits, DIMACS I/O."""

from repro.sat.circuit import FALSE, TRUE, CircuitBuilder
from repro.sat.dimacs import parse_dimacs, solver_from_dimacs, to_dimacs
from repro.sat.solver import SatSolver, SolverStats, SolveSession

__all__ = [
    "CircuitBuilder",
    "FALSE",
    "SatSolver",
    "SolveSession",
    "SolverStats",
    "TRUE",
    "parse_dimacs",
    "solver_from_dimacs",
    "to_dimacs",
]
