"""DIMACS CNF import/export for the SAT solver.

Useful for debugging the analyzer's translations against external solvers and
for the SAT-level benchmarks.
"""

from __future__ import annotations

from repro.sat.solver import SatSolver


def parse_dimacs(text: str) -> tuple[int, list[list[int]]]:
    """Parse DIMACS CNF text into ``(num_vars, clauses)``."""
    num_vars = 0
    clauses: list[list[int]] = []
    current: list[int] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValueError(f"malformed problem line: {line!r}")
            num_vars = int(parts[2])
            continue
        for token in line.split():
            lit = int(token)
            if lit == 0:
                clauses.append(current)
                current = []
            else:
                current.append(lit)
    if current:
        clauses.append(current)
    return num_vars, clauses


def solver_from_dimacs(text: str) -> SatSolver:
    """Build a solver loaded with the clauses of a DIMACS CNF file."""
    num_vars, clauses = parse_dimacs(text)
    solver = SatSolver()
    for _ in range(num_vars):
        solver.new_var()
    for clause in clauses:
        solver.add_clause(clause)
    return solver


def to_dimacs(num_vars: int, clauses: list[list[int]]) -> str:
    """Render clauses as DIMACS CNF text."""
    lines = [f"p cnf {num_vars} {len(clauses)}"]
    for clause in clauses:
        lines.append(" ".join(str(lit) for lit in clause) + " 0")
    return "\n".join(lines) + "\n"
