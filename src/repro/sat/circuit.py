"""Boolean circuits with hash-consing and Tseitin CNF encoding.

The analyzer grounds relational formulas into circuits built by
:class:`CircuitBuilder`; the builder shares structurally identical subcircuits
(hash-consing) and converts each circuit node to at most one auxiliary SAT
variable (Tseitin encoding) on demand.

Handles are opaque integers.  ``TRUE``/``FALSE`` are constants; negation is
handle negation, so ``-h`` is the complement of ``h`` (complement edges).
"""

from __future__ import annotations

from repro.sat.solver import SatSolver

TRUE = 1
"""Handle of the constant-true circuit."""

FALSE = -1
"""Handle of the constant-false circuit."""


class CircuitBuilder:
    """Builds shared boolean circuits and encodes them into a solver."""

    def __init__(self, solver: SatSolver) -> None:
        self._solver = solver
        # Node storage: handle h >= 2 maps to node at index h - 2.
        # A node is ("var", lit) or ("and", tuple_of_child_handles).
        self._nodes: list[tuple[str, object]] = []
        self._memo: dict[tuple[str, object], int] = {}
        self._literals: dict[int, int] = {}  # handle -> solver literal

    @property
    def solver(self) -> SatSolver:
        return self._solver

    # -- construction --------------------------------------------------------

    def var(self, lit: int) -> int:
        """A circuit input backed by solver literal ``lit``."""
        if lit == 0:
            raise ValueError("literal 0 is not allowed")
        if lit < 0:
            return -self.var(-lit)
        return self._intern(("var", lit))

    def fresh_var(self) -> int:
        """A circuit input backed by a fresh solver variable."""
        return self.var(self._solver.new_var())

    def _intern(self, node: tuple[str, object]) -> int:
        handle = self._memo.get(node)
        if handle is None:
            self._nodes.append(node)
            handle = len(self._nodes) + 1  # handles start at 2
            self._memo[node] = handle
        return handle

    def and_(self, children: list[int]) -> int:
        """Conjunction of child handles (n-ary, simplifying)."""
        unique: list[int] = []
        seen: set[int] = set()
        for child in children:
            if child == FALSE:
                return FALSE
            if child == TRUE or child in seen:
                continue
            if -child in seen:
                return FALSE
            seen.add(child)
            unique.append(child)
        if not unique:
            return TRUE
        if len(unique) == 1:
            return unique[0]
        unique.sort()
        return self._intern(("and", tuple(unique)))

    def or_(self, children: list[int]) -> int:
        """Disjunction via De Morgan over complement edges."""
        return -self.and_([-c for c in children])

    def not_(self, handle: int) -> int:
        return -handle

    def implies(self, left: int, right: int) -> int:
        return self.or_([-left, right])

    def iff(self, left: int, right: int) -> int:
        return self.and_([self.implies(left, right), self.implies(right, left)])

    def ite(self, cond: int, then: int, other: int) -> int:
        return self.and_([self.implies(cond, then), self.implies(-cond, other)])

    # -- cardinality ---------------------------------------------------------

    def at_least(self, inputs: list[int], k: int) -> int:
        """Handle that is true iff at least ``k`` of ``inputs`` are true."""
        if k <= 0:
            return TRUE
        if k > len(inputs):
            return FALSE
        # Sequential-counter DP: row[j] = "at least j of the inputs so far".
        row: list[int] = [TRUE] + [FALSE] * k
        for x in inputs:
            new_row = [TRUE] * (k + 1)
            for j in range(1, k + 1):
                new_row[j] = self.or_([row[j], self.and_([x, row[j - 1]])])
            row = new_row
        return row[k]

    def at_most(self, inputs: list[int], k: int) -> int:
        return -self.at_least(inputs, k + 1)

    def exactly(self, inputs: list[int], k: int) -> int:
        return self.and_([self.at_least(inputs, k), self.at_most(inputs, k)])

    # -- integer comparison helpers (unary counters) ---------------------------

    def count_compare(self, inputs: list[int], op: str, k: int) -> int:
        """Compare ``|true(inputs)|`` against constant ``k`` (``op`` textual)."""
        if op == "=":
            return self.exactly(inputs, k)
        if op == "!=":
            return -self.exactly(inputs, k)
        if op == "<":
            return self.at_most(inputs, k - 1)
        if op == "<=":
            return self.at_most(inputs, k)
        if op == ">":
            return self.at_least(inputs, k + 1)
        if op == ">=":
            return self.at_least(inputs, k)
        raise ValueError(f"unknown comparison operator {op!r}")

    # -- encoding ------------------------------------------------------------

    def to_literal(self, handle: int) -> int:
        """Tseitin-encode ``handle`` and return an equisatisfiable literal."""
        if handle == TRUE or handle == FALSE:
            # Use a pinned constant variable.
            lit = self._literals.get(TRUE)
            if lit is None:
                lit = self._solver.new_var()
                self._solver.add_clause([lit])
                self._literals[TRUE] = lit
            return lit if handle == TRUE else -lit
        if handle < 0:
            return -self.to_literal(-handle)
        cached = self._literals.get(handle)
        if cached is not None:
            return cached
        kind, payload = self._nodes[handle - 2]
        if kind == "var":
            lit = payload  # type: ignore[assignment]
        else:
            children = payload  # type: ignore[assignment]
            child_lits = [self.to_literal(c) for c in children]
            lit = self._solver.new_var()
            for child_lit in child_lits:
                self._solver.add_clause([-lit, child_lit])
            self._solver.add_clause([lit] + [-cl for cl in child_lits])
        self._literals[handle] = lit
        return lit

    def assert_true(self, handle: int) -> None:
        """Constrain the formula represented by ``handle`` to hold."""
        if handle == TRUE:
            return
        if handle == FALSE:
            # Force unsatisfiability explicitly.
            var = self._solver.new_var()
            self._solver.add_clause([var])
            self._solver.add_clause([-var])
            return
        if handle > 0:
            kind, payload = self._nodes[handle - 2]
            if kind == "and":
                for child in payload:  # type: ignore[union-attr]
                    self.assert_true(child)
                return
        self._solver.add_clause([self.to_literal(handle)])

    def assert_under(self, selector: int, handle: int) -> None:
        """Constrain ``handle`` to hold whenever ``selector`` is assumed.

        Tseitin definitions only *define* auxiliary variables, so they are
        added permanently; only the top-level unit assertions carry the
        ``-selector`` guard.  With the selector unassumed the group is inert.
        """
        if handle == TRUE:
            return
        if handle == FALSE:
            # Assuming the selector must yield immediate UNSAT.
            self._solver.add_clause([-selector])
            return
        if handle > 0:
            kind, payload = self._nodes[handle - 2]
            if kind == "and":
                for child in payload:  # type: ignore[union-attr]
                    self.assert_under(selector, child)
                return
        self._solver.add_clause([-selector, self.to_literal(handle)])

    def evaluate(self, handle: int, true_lits: set[int]) -> bool:
        """Evaluate a circuit under an assignment (set of true literals)."""
        if handle == TRUE:
            return True
        if handle == FALSE:
            return False
        if handle < 0:
            return not self.evaluate(-handle, true_lits)
        kind, payload = self._nodes[handle - 2]
        if kind == "var":
            lit = payload  # type: ignore[assignment]
            return lit in true_lits if lit > 0 else -lit not in true_lits
        return all(self.evaluate(c, true_lits) for c in payload)  # type: ignore[union-attr]
