"""LLM substrate: client protocol, prompts, response parsing, simulated GPT-4."""

from repro.llm.client import (
    Conversation,
    LLMClient,
    LLMProtocolError,
    Message,
    RetryingClient,
    TransientLLMError,
    UnreliableClient,
    UsageStats,
)
from repro.llm.extract import (
    ExtractionError,
    extract_module,
    try_extract_module,
)
from repro.llm.mock_gpt import CapabilityProfile, MockGPT
from repro.llm.transcripts import ReplayClient, TranscriptRecorder
from repro.llm.prompts import (
    AnalyzerReport,
    CommandReport,
    FeedbackLevel,
    PromptSetting,
    RepairHints,
    initial_multi_round_prompt,
    prompt_agent_conversation,
    render_generic_feedback,
    render_no_feedback,
    single_round_prompt,
)

__all__ = [
    "AnalyzerReport",
    "CapabilityProfile",
    "CommandReport",
    "Conversation",
    "ExtractionError",
    "FeedbackLevel",
    "LLMClient",
    "LLMProtocolError",
    "Message",
    "MockGPT",
    "PromptSetting",
    "ReplayClient",
    "RetryingClient",
    "TranscriptRecorder",
    "TransientLLMError",
    "RepairHints",
    "UnreliableClient",
    "UsageStats",
    "extract_module",
    "initial_multi_round_prompt",
    "prompt_agent_conversation",
    "render_generic_feedback",
    "render_no_feedback",
    "single_round_prompt",
    "try_extract_module",
]
