"""Extraction of Alloy specifications from LLM responses.

The study notes that "a specialized parser was developed to address
challenges posed by unique scenarios that could hinder the extraction of
proposed specifications" — models wrap code in varied fences, prepend
prose, or emit fragments.  This module reproduces that parser: it tries,
in order,

1. fenced code blocks (``` with any language tag),
2. the tail of an *unterminated* fence (models truncated mid-response
   routinely open a fence and never close it),
3. the longest brace-balanced region that starts with an Alloy keyword,
4. the whole response,

and validates each candidate by actually parsing it.
"""

from __future__ import annotations

import re

from repro.alloy.errors import AlloyError
from repro.alloy.nodes import Module
from repro.alloy.parser import parse_module

_FENCE_PATTERN = re.compile(r"```[a-zA-Z0-9_+-]*\n(.*?)```", re.DOTALL)
_KEYWORD_PATTERN = re.compile(
    r"^\s*(module|abstract|one|lone|some|sig|fact|pred|fun|assert|run|check)\b",
    re.MULTILINE,
)


class ExtractionError(Exception):
    """Raised when no parseable specification can be recovered."""


def _unterminated_fence_tail(response: str) -> str | None:
    """The text after a trailing fence that was opened but never closed.

    An odd number of ``` markers means the last one opens a fence that
    runs to the end of the response — the signature of a completion cut
    off by a token limit.  The language tag on the opening line (if any)
    is dropped.
    """
    marks = [m.end() for m in re.finditer(r"```", response)]
    if len(marks) % 2 == 0:
        return None
    tail = response[marks[-1] :]
    if "\n" in tail:
        first_line, rest = tail.split("\n", 1)
        # A bare tag like "alloy" belongs to the fence; anything with
        # spaces or punctuation is already content.
        if re.fullmatch(r"[a-zA-Z0-9_+-]*", first_line.strip()):
            tail = rest
    return tail if tail.strip() else None


def candidate_regions(response: str) -> list[str]:
    """Textual regions that might contain a specification, best-first."""
    # Longest fenced candidates first keeps full specs ahead of snippets
    # quoted in the explanation.
    regions = sorted(
        (match.group(1) for match in _FENCE_PATTERN.finditer(response)),
        key=len,
        reverse=True,
    )
    tail = _unterminated_fence_tail(response)
    if tail is not None:
        regions.append(tail)
    keyword_match = _KEYWORD_PATTERN.search(response)
    if keyword_match is not None:
        regions.append(response[keyword_match.start() :])
    regions.append(response)
    return regions


def extract_module(response: str) -> Module:
    """Parse the specification proposed in ``response``.

    Raises :class:`ExtractionError` when no region parses.
    """
    last_error: Exception | None = None
    for region in candidate_regions(response):
        text = region.strip()
        if not text:
            continue
        try:
            module = parse_module(text)
        except (AlloyError, RecursionError) as error:
            last_error = error
            continue
        if module.paragraphs:
            return module
    raise ExtractionError(f"no parseable specification in response: {last_error}")


def try_extract_module(response: str) -> tuple[Module | None, str | None]:
    """Extraction that reports failure instead of raising."""
    try:
        return extract_module(response), None
    except ExtractionError as error:
        return None, str(error)
