"""LLM client abstraction.

The study called OpenAI/Azure GPT-4 over HTTPS; this repository talks to any
object satisfying :class:`LLMClient`.  The offline reproduction plugs in
:class:`repro.llm.mock_gpt.MockGPT`; a thin adapter to a real API client can
be substituted without touching the repair pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol


@dataclass(frozen=True)
class Message:
    """One chat message."""

    role: str  # "system" | "user" | "assistant"
    content: str


@dataclass
class Conversation:
    """An ordered chat history, as sent to the model."""

    messages: list[Message] = field(default_factory=list)

    def add(self, role: str, content: str) -> None:
        self.messages.append(Message(role=role, content=content))

    def last_assistant(self) -> str | None:
        for message in reversed(self.messages):
            if message.role == "assistant":
                return message.content
        return None

    def rendered(self) -> str:
        """A flat text rendering (used for seeding the mock's RNG)."""
        return "\n".join(f"[{m.role}] {m.content}" for m in self.messages)


class LLMClient(Protocol):
    """Anything that can complete a chat conversation."""

    def complete(self, conversation: Conversation) -> str:
        """Return the assistant's next message for the conversation."""
        ...


@dataclass
class UsageStats:
    """Request accounting, mirroring what an API client would expose."""

    requests: int = 0
    prompt_chars: int = 0
    completion_chars: int = 0

    def record(self, conversation: Conversation, completion: str) -> None:
        self.requests += 1
        self.prompt_chars += sum(len(m.content) for m in conversation.messages)
        self.completion_chars += len(completion)
