"""LLM client abstraction.

The study called OpenAI/Azure GPT-4 over HTTPS; this repository talks to any
object satisfying :class:`LLMClient`.  The offline reproduction plugs in
:class:`repro.llm.mock_gpt.MockGPT`; a thin adapter to a real API client can
be substituted without touching the repair pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro import chaos, obs
from repro.runtime.errors import ReproError, TransientError
from repro.runtime.retry import RetryPolicy, call_with_retry


def estimate_tokens(text: str) -> int:
    """A model-free token estimate (the usual ~4 chars/token heuristic).

    The offline mock has no real tokenizer; this keeps prompt/completion
    cost telemetry comparable in shape to what a billed API would report.
    """
    return max(1, len(text) // 4) if text else 0


@dataclass(frozen=True)
class Message:
    """One chat message."""

    role: str  # "system" | "user" | "assistant"
    content: str


@dataclass
class Conversation:
    """An ordered chat history, as sent to the model."""

    messages: list[Message] = field(default_factory=list)

    def add(self, role: str, content: str) -> None:
        self.messages.append(Message(role=role, content=content))

    def last_assistant(self) -> str | None:
        for message in reversed(self.messages):
            if message.role == "assistant":
                return message.content
        return None

    def rendered(self) -> str:
        """A flat text rendering (used for seeding the mock's RNG)."""
        return "\n".join(f"[{m.role}] {m.content}" for m in self.messages)


class LLMClient(Protocol):
    """Anything that can complete a chat conversation."""

    def complete(self, conversation: Conversation) -> str:
        """Return the assistant's next message for the conversation."""
        ...


@dataclass
class UsageStats:
    """Request accounting, mirroring what an API client would expose."""

    requests: int = 0
    prompt_chars: int = 0
    completion_chars: int = 0

    def record(self, conversation: Conversation, completion: str) -> None:
        self.requests += 1
        self.prompt_chars += sum(len(m.content) for m in conversation.messages)
        self.completion_chars += len(completion)


class TransientLLMError(TransientError):
    """A retryable transport failure: rate limit, dropped connection,
    empty completion.  Real API adapters raise this; the retrying client
    absorbs it."""

    code = "llm.transient"


class LLMProtocolError(ReproError):
    """A non-retryable protocol violation (e.g. a non-string completion)."""

    code = "llm.protocol"


@dataclass
class RetryingClient:
    """An :class:`LLMClient` decorator adding deterministic retry.

    Wraps any client; transparently retries :class:`TransientError`
    completions on the policy's backoff schedule.  Over the offline
    :class:`~repro.llm.mock_gpt.MockGPT` it is a zero-cost pass-through;
    over a real API adapter it is the production resilience layer.  An
    empty or non-string completion is treated as transient — the
    most common real-API glitch — and retried like a dropped connection.
    """

    inner: LLMClient
    policy: RetryPolicy = field(default_factory=RetryPolicy)
    sleep: Callable[[float], None] | None = None
    retries: int = 0
    """Total retries performed, across all requests."""

    def complete(self, conversation: Conversation) -> str:
        def attempt() -> str:
            # Chaos sites bracket the real call: a transport failure fires
            # before the provider is reached (so the retry loop absorbs it),
            # while garbage/truncation corrupt an otherwise-good completion
            # (so the downstream extraction layer must absorb them).
            if chaos.fire("llm.transient") is not None:
                raise TransientLLMError("chaos: injected transport failure")
            completion = self.inner.complete(conversation)
            if not isinstance(completion, str):
                raise LLMProtocolError(
                    f"completion is {type(completion).__name__}, not str"
                )
            if not completion.strip():
                raise TransientLLMError("empty completion")
            event = chaos.fire("llm.garbage")
            if event is not None:
                return chaos.garbled_completion(event.payload)
            event = chaos.fire("llm.truncate", length=len(completion))
            if event is not None:
                return chaos.truncated_completion(completion, event.payload)
            return completion

        def count(attempt_no: int, delay: float, error: BaseException) -> None:
            self.retries += 1
            if obs.get_metrics().enabled:
                obs.counter("llm.retries").inc()

        with obs.span("llm.complete", messages=len(conversation.messages)) as span:
            completion = call_with_retry(
                attempt, policy=self.policy, sleep=self.sleep, on_retry=count
            )
            metrics = obs.get_metrics()
            if metrics.enabled:
                prompt_tokens = sum(
                    estimate_tokens(m.content) for m in conversation.messages
                )
                completion_tokens = estimate_tokens(completion)
                obs.counter("llm.requests").inc()
                obs.counter("llm.prompt_tokens").inc(prompt_tokens)
                obs.counter("llm.completion_tokens").inc(completion_tokens)
                span.set(
                    prompt_tokens=prompt_tokens,
                    completion_tokens=completion_tokens,
                )
        return completion


@dataclass
class UnreliableClient:
    """Deterministic chaos injection for tests and resilience drills:
    every ``failure_period``-th request raises :class:`TransientLLMError`
    before reaching the wrapped client."""

    inner: LLMClient
    failure_period: int = 3
    requests: int = 0

    def complete(self, conversation: Conversation) -> str:
        self.requests += 1
        if self.failure_period > 0 and self.requests % self.failure_period == 0:
            raise TransientLLMError(
                f"injected transport failure on request {self.requests}"
            )
        return self.inner.complete(conversation)
