"""MockGPT: a deterministic, seeded stand-in for GPT-4.

The offline environment cannot call OpenAI/Azure, so this class simulates
the *behaviour* of a strong code LLM on Alloy repair while keeping every
in-repo code path real: it reads only the conversation text, locates the
faulty specification and any hints inside the prompt, reasons over
counterexamples quoted in analyzer feedback, and answers with prose plus a
fenced code block (occasionally with the formatting quirks that forced the
study's authors to build a specialized response parser).

Its repair engine is an explicit capability model: a seeded sampler over
mutation/template proposals whose *targeting quality* improves with the
information present in the prompt — bug location, fix descriptions, passing
assertions, and counterexample feedback.  The knobs in
:class:`CapabilityProfile` are calibrated so the per-setting success rates
match the shape of the published study (see EXPERIMENTS.md).
"""

from __future__ import annotations

import hashlib
import random
import re
from dataclasses import dataclass

from repro.alloy.errors import AlloyError
from repro.alloy.nodes import Module
from repro.alloy.parser import parse_module
from repro.alloy.pretty import print_module
from repro.alloy.resolver import resolve_module
from repro.alloy.walk import get_at
from repro.analyzer.evaluator import Evaluator
from repro.analyzer.instance import Instance
from repro.llm.client import Conversation, UsageStats
from repro.repair.mutation import Mutant, Mutator, mutation_points
from repro.repair.templates import strengthening_candidates, template_candidates

_FENCE = re.compile(r"```[a-zA-Z0-9_+-]*\n(.*?)```", re.DOTALL)
_LOC_HINT = re.compile(r"Bug location: (.+)")
_FIX_HINT = re.compile(r"Fix description: (.+)")
_PASS_HINT = re.compile(r"assertion '(\w+)' pass")
_PARAGRAPH_HINT = re.compile(r"(?:fact|pred|fun|assert|sig|field)\s+'?(\w+)'?")
_RELATION_LINE = re.compile(r"^\s*(\w+) = \{(.*)\}\s*$")

# Keyword classes a fix description may mention, mapped to the substrings of
# mutation descriptions they endorse and the weight of the endorsement.
# Specific structural vocabulary ("quantifier", "closure") is far more
# directive than generic words ("operator", "constraint").
_FIX_CLASSES: dict[str, tuple[float, list[str]]] = {
    "quantifier": (4.0, ["quantifier"]),
    "comparison": (4.0, ["compare", "swap operands"]),
    "connective": (4.0, ["logic"]),
    "multiplicity": (4.0, ["multiplicity", "field"]),
    "negation": (4.0, ["negate", "drop negation"]),
    "closure": (4.0, ["closure", "* ->", "^ ->"]),
    "transpose": (4.0, ["transpose"]),
    "missing conjunct": (4.0, ["drop conjunct"]),
    "operator": (1.5, ["operator", "compare", "logic"]),
    "relation": (1.5, ["name ", "join"]),
    "constraint": (0.5, ["drop conjunct", "negate"]),
}


@dataclass
class CapabilityProfile:
    """Calibration knobs for the simulated model's repair proficiency.

    The *insight* probabilities control how often the model engages its
    semantic reasoning (implemented as bounded self-verification of its
    top-ranked candidates at a reduced scope) instead of pattern-matching a
    plausible-looking edit.  ``self_check_candidates`` and
    ``self_check_scope`` bound how much reasoning one call can do — the
    model's effective competence.
    """

    proposals_per_call: int = 60
    insight_base: float = 0.08
    insight_loc: float = 0.42
    insight_fix: float = 0.80
    insight_pass: float = 0.28
    insight_feedback_generic: float = 0.45
    insight_feedback_auto: float = 0.50
    self_check_candidates: int = 0
    """How many top-ranked proposals the model mentally verifies (0 = none)."""
    self_check_scope: int = 2
    """Scope cap for mental verification (small scopes miss counterexamples)."""
    deep_roots: int = 0
    """When no single edit verifies, how many top candidates to extend with a
    second edit (the model 'thinking further'); 0 disables two-edit search."""
    deep_leaves: int = 0
    """How many second edits to mentally verify per extended candidate."""
    depth2_probability: float = 0.20
    malformed_rate: float = 0.03
    chatter_rate: float = 0.6
    misleading_hint_penalty: float = 0.5
    """Multiplier applied to fix-hint insight when the hint reads as vague."""
    loc_pass_interference: float = 1.0
    """Multiplier on insight when Loc and Pass hints are combined without a
    fix description.  The study observed Loc+Pass underperforming Loc alone —
    the two signals pull the model's attention in different directions."""


GPT35_PROFILE = CapabilityProfile(
    proposals_per_call=60,
    insight_base=0.035,
    insight_loc=0.85,
    insight_fix=0.88,
    insight_pass=0.85,
    insight_feedback_generic=0.35,
    insight_feedback_auto=0.40,
    self_check_candidates=12,
    self_check_scope=3,
    deep_roots=4,
    deep_leaves=6,
    depth2_probability=0.25,
    malformed_rate=0.04,
    loc_pass_interference=0.22,
)
"""The single-round study used ChatGPT (GPT-3.5-class reasoning)."""

GPT4_PROFILE = CapabilityProfile(
    proposals_per_call=90,
    insight_base=0.45,
    insight_loc=0.45,
    insight_fix=0.85,
    insight_pass=0.35,
    insight_feedback_generic=0.30,
    insight_feedback_auto=0.35,
    self_check_candidates=12,
    self_check_scope=3,
    deep_roots=3,
    deep_leaves=5,
    depth2_probability=0.15,
    malformed_rate=0.02,
)
"""The multi-round study used GPT-4: stronger unaided reasoning."""

# Plausibility prior: how much each edit class looks like a typical human
# specification bug-fix (drives ranking when no stronger signal applies).
_PLAUSIBILITY: list[tuple[str, float]] = [
    ("quantifier", 0.9),
    ("compare", 0.9),
    ("closure", 0.9),
    ("multiplicity", 0.8),
    ("logic", 0.8),
    ("field", 0.7),
    ("transpose", 0.6),
    ("operator", 0.6),
    ("name ", 0.45),
    ("join", 0.4),
    ("swap operands", 0.4),
    ("drop negation", 0.3),
    ("negate formula", 0.15),
    ("drop conjunct", 0.15),
    ("univ", 0.05),
    ("none", 0.05),
]


class MockGPT:
    """A deterministic simulated GPT-4 for Alloy repair."""

    def __init__(self, seed: int = 0, profile: CapabilityProfile | None = None) -> None:
        self._seed = seed
        self.profile = profile or CapabilityProfile()
        self.usage = UsageStats()

    # -- entry point ------------------------------------------------------------

    def complete(self, conversation: Conversation) -> str:
        system = next(
            (m.content for m in conversation.messages if m.role == "system"), ""
        )
        if "debugging assistant" in system:
            response = self._prompt_agent(conversation)
        else:
            response = self._repair_agent(conversation)
        self.usage.record(conversation, response)
        return response

    # -- deterministic randomness --------------------------------------------------

    def _rng_for(self, conversation: Conversation) -> random.Random:
        digest = hashlib.sha256()
        digest.update(str(self._seed).encode())
        digest.update(conversation.rendered().encode())
        return random.Random(int.from_bytes(digest.digest()[:8], "big"))

    # -- Prompt Agent (Auto-feedback) -------------------------------------------

    def _prompt_agent(self, conversation: Conversation) -> str:
        """Produce tailored repair guidance from a candidate + report."""
        rng = self._rng_for(conversation)
        user_text = "\n".join(
            m.content for m in conversation.messages if m.role == "user"
        )
        module = self._find_spec(user_text)
        failing = re.findall(r"- (?:run|check) (\w+): expected", user_text)
        if module is None:
            return (
                "The candidate could not be analyzed. Re-check the syntax and "
                "resubmit the full specification."
            )
        suspect = self._suspect_paragraph(module, failing, user_text, rng)
        lines = ["Based on the analyzer report, here is my assessment:"]
        if failing:
            lines.append(
                f"The failing command(s) {', '.join(failing)} indicate the "
                "constraints are mis-specified."
            )
        if suspect is not None:
            name, index = suspect
            lines.append(
                f"I suspect the problem lies in fact '{name}', "
                f"constraint {index + 1}. Reconsider its operators and "
                "quantifiers."
            )
        lines.append(
            "Adjust the suspect constraint rather than rewriting the whole "
            "model, and return the complete specification."
        )
        return "\n".join(lines)

    def _suspect_paragraph(
        self,
        module: Module,
        failing: list[str],
        report_text: str,
        rng: random.Random,
    ) -> tuple[str, int] | None:
        """Heuristically pick a (fact name, conjunct index) to blame."""
        candidates: list[tuple[str, int, int]] = []  # (name, index, overlap)
        mentioned = set(re.findall(r"\b(\w+) = \{", report_text))
        for paragraph in module.facts:
            name = paragraph.name or "fact"
            for index, formula in enumerate(paragraph.body.formulas):
                names = {
                    n.name
                    for n in formula.walk()
                    if hasattr(n, "name") and isinstance(getattr(n, "name"), str)
                }
                overlap = len(names & mentioned)
                candidates.append((name, index, overlap))
        if not candidates:
            return None
        best_overlap = max(c[2] for c in candidates)
        top = [c for c in candidates if c[2] == best_overlap]
        name, index, _ = rng.choice(top)
        return name, index

    # -- Repair Agent -------------------------------------------------------------

    def _repair_agent(self, conversation: Conversation) -> str:
        rng = self._rng_for(conversation)
        first_user = next(
            (m.content for m in conversation.messages if m.role == "user"), ""
        )
        all_user = "\n".join(
            m.content for m in conversation.messages if m.role == "user"
        )
        module = self._find_spec(first_user)
        if module is None:
            return (
                "I could not find a complete Alloy specification in your "
                "message; please include it in a fenced code block."
            )
        try:
            info = resolve_module(module)
        except (AlloyError, RecursionError):
            return "The provided specification does not resolve; please re-check it."

        hints = self._collect_hints(all_user)
        feedback_instances = self._parse_feedback_instances(all_user)
        if not feedback_instances and self.profile.self_check_candidates > 0:
            # Strong models "work out" why the model is wrong before editing:
            # derive counterexamples of the failing checks (prioritizing a
            # Pass-hinted assertion) and favour candidates that refute them.
            feedback_instances = self._derive_counterexamples(
                module, hints.get("pass")
            )
        proposals = self._enumerate_proposals(module, info, rng)
        if not proposals:
            return self._render(module, rng, "I believe the specification is correct.")

        insight = self._insight_probability(hints, conversation, rng)
        confident = rng.random() < insight
        if confident:
            ranked = self._rank_proposals(
                module, info, proposals, hints, feedback_instances, rng
            )
            chosen = self._self_check(ranked, hints, feedback_instances, rng)
        else:
            chosen = rng.choice(proposals)

        candidate = chosen.module
        if not confident and rng.random() < self.profile.depth2_probability:
            # Low confidence: the model sometimes piles on a second edit,
            # the "creative rewrite" behaviour real LLMs exhibit.
            candidate = self._second_edit(candidate, rng) or candidate

        prose = self._explanation(chosen, rng)
        return self._render(candidate, rng, prose)

    # -- prompt understanding ---------------------------------------------------

    @staticmethod
    def _find_spec(text: str) -> Module | None:
        for match in _FENCE.finditer(text):
            try:
                module = parse_module(match.group(1))
            except (AlloyError, RecursionError):
                continue
            if module.paragraphs:
                return module
        return None

    @staticmethod
    def _collect_hints(text: str) -> dict[str, str]:
        hints: dict[str, str] = {}
        loc = _LOC_HINT.search(text)
        if loc:
            hints["loc"] = loc.group(1)
        fix = _FIX_HINT.search(text)
        if fix:
            hints["fix"] = fix.group(1)
        pass_hint = _PASS_HINT.search(text)
        if pass_hint:
            hints["pass"] = pass_hint.group(1)
        suspect = re.search(r"suspect the problem lies in fact '(\w+)'", text)
        if suspect:
            hints["auto_loc"] = suspect.group(1)
        return hints

    def _derive_counterexamples(
        self, module: Module, assertion: str | None = None
    ) -> list[Instance]:
        """Mentally find counterexamples of the module's check commands.

        With an ``assertion`` name (the Pass hint) only that check is probed;
        otherwise every check command is tried in order."""
        import copy

        from repro.alloy.nodes import Command
        from repro.analyzer.analyzer import Analyzer

        try:
            analyzer = Analyzer(copy.deepcopy(module))
        except (AlloyError, RecursionError):
            return []
        targets: list[str] = []
        if assertion is not None and assertion in analyzer.info.asserts:
            targets = [assertion]
        else:
            targets = [
                c.target
                for c in analyzer.info.commands
                if c.kind == "check" and c.target is not None
            ]
        scope = self.profile.self_check_scope + 1
        found: list[Instance] = []
        for target in targets:
            command = Command(kind="check", target=target, default_scope=scope)
            try:
                result = analyzer.run_command(command, max_instances=2)
            except (AlloyError, RecursionError):
                continue
            found.extend(result.instances)
            if found:
                break
        return found

    @staticmethod
    def _parse_feedback_instances(text: str) -> list[Instance]:
        """Recover counterexample valuations quoted in feedback messages."""
        instances: list[Instance] = []
        current: dict[str, set[tuple[str, ...]]] = {}
        for line in text.splitlines():
            match = _RELATION_LINE.match(line)
            if match is None:
                if current:
                    instances.append(
                        Instance(
                            relations={
                                k: frozenset(v) for k, v in current.items()
                            }
                        )
                    )
                    current = {}
                continue
            name, body = match.groups()
            tuples: set[tuple[str, ...]] = set()
            body = body.strip()
            if body:
                for chunk in body.split(","):
                    tuples.add(tuple(part.strip() for part in chunk.split("->")))
            current[name] = tuples
        if current:
            instances.append(
                Instance(relations={k: frozenset(v) for k, v in current.items()})
            )
        return instances

    def _insight_probability(
        self, hints: dict[str, str], conversation: Conversation, rng: random.Random
    ) -> float:
        profile = self.profile
        miss = 1.0 - profile.insight_base
        if "loc" in hints:
            miss *= 1.0 - profile.insight_loc
        if "fix" in hints:
            strength = profile.insight_fix
            if "may" in hints["fix"] or "somewhere" in hints["fix"]:
                strength *= profile.misleading_hint_penalty
            miss *= 1.0 - strength
        if "pass" in hints:
            miss *= 1.0 - profile.insight_pass
        text = conversation.rendered()
        if "counterexample" in text:
            miss *= 1.0 - profile.insight_feedback_generic
        if "auto_loc" in hints:
            miss *= 1.0 - profile.insight_feedback_auto
        probability = 1.0 - miss
        if "loc" in hints and "pass" in hints and "fix" not in hints:
            probability *= profile.loc_pass_interference
        return probability

    # -- proposal generation and ranking -----------------------------------------

    def _enumerate_proposals(
        self, module: Module, info, rng: random.Random
    ) -> list[Mutant]:
        mutator = Mutator(module, info)
        proposals = list(mutator.all_mutants(limit=self.profile.proposals_per_call))
        points = mutation_points(module)
        rng.shuffle(points)
        remaining = self.profile.proposals_per_call // 2
        for path in points[:6]:
            for mutant in template_candidates(
                module, info, path, max_per_location=8
            ):
                proposals.append(mutant)
                remaining -= 1
                if remaining <= 0:
                    break
            if remaining <= 0:
                break
        # Synthesis proposals: re-state an assertion as a constraint (the
        # "write the missing invariant" move a strong LLM makes naturally).
        for candidate, description in strengthening_candidates(module, info):
            proposals.append(Mutant(module=candidate, description=description, path=()))
        rng.shuffle(proposals)
        return proposals

    def _rank_proposals(
        self,
        module: Module,
        info,
        proposals: list[Mutant],
        hints: dict[str, str],
        feedback_instances: list[Instance],
        rng: random.Random,
    ) -> list[Mutant]:
        loc_hint = hints.get("loc", "") + " " + hints.get("auto_loc", "")
        hinted_names = set(_PARAGRAPH_HINT.findall(loc_hint))
        hinted_names |= set(re.findall(r"'(\w+)'", loc_hint))
        fix_text = hints.get("fix", "").lower()
        fix_classes = [
            (weight, needles)
            for keyword, (weight, needles) in _FIX_CLASSES.items()
            if keyword in fix_text
        ]
        pass_relations: set[str] = set()
        if "pass" in hints:
            assertion = info.asserts.get(hints["pass"])
            if assertion is not None:
                pass_relations = {
                    n.name
                    for n in assertion.body.walk()
                    if hasattr(n, "name") and isinstance(getattr(n, "name"), str)
                }

        paragraph_relations = self._paragraph_relations(module)

        def score(mutant: Mutant) -> float:
            value = rng.random()  # jitter for tie-breaking
            paragraph = self._owning_paragraph_name(module, mutant)
            if paragraph and paragraph in hinted_names:
                value += 3.0
            for weight, needles in fix_classes:
                if any(needle in mutant.description for needle in needles):
                    value += weight
            for needle, prior in _PLAUSIBILITY:
                if needle in mutant.description:
                    value += prior
                    break
            if pass_relations:
                # Structural pseudo-localization: edits inside constraints
                # mentioning the assertion's relations are more promising.
                overlap = paragraph_relations.get(paragraph or "", set())
                if overlap & pass_relations:
                    value += 2.5
                if any(name in mutant.description for name in pass_relations):
                    value += 1.0
            if feedback_instances:
                value += 2.0 * self._refutes(mutant.module, feedback_instances)
            return value

        return sorted(proposals, key=score, reverse=True)

    def _self_check(
        self,
        ranked: list[Mutant],
        hints: dict[str, str],
        feedback_instances: list[Instance],
        rng: random.Random,
    ) -> Mutant:
        """Mental verification: check top-ranked candidates against the
        spec's own commands at a reduced scope, modelling in-context semantic
        reasoning.  The reduced scope keeps the reasoning fallible — a
        candidate can pass mentally yet fail at the real scope.

        When no single edit verifies, the model "keeps thinking": it extends
        its best candidates with a second edit (bounded by ``deep_roots`` ×
        ``deep_leaves``), which is how multi-edit faults get repaired."""
        budget = self.profile.self_check_candidates
        if budget <= 0:
            return ranked[0]
        for mutant in ranked[:budget]:
            if self._mentally_verifies(mutant.module):
                return mutant
        for root in ranked[: self.profile.deep_roots]:
            try:
                root_info = resolve_module(root.module)
            except (AlloyError, RecursionError):
                continue
            followups = self._enumerate_proposals(root.module, root_info, rng)
            if not followups:
                continue
            ranked_followups = self._rank_proposals(
                root.module, root_info, followups, hints, feedback_instances, rng
            )
            for leaf in ranked_followups[: self.profile.deep_leaves]:
                if self._mentally_verifies(leaf.module):
                    return Mutant(
                        module=leaf.module,
                        description=f"{root.description}; {leaf.description}",
                        path=root.path,
                    )
        return ranked[0]

    def _mentally_verifies(self, module: Module) -> bool:
        import copy

        from repro.analyzer.analyzer import Analyzer

        try:
            reduced = copy.deepcopy(module)
            for paragraph in reduced.commands:
                paragraph.default_scope = min(
                    paragraph.default_scope, self.profile.self_check_scope
                )
                for sig_scope in paragraph.sig_scopes:
                    sig_scope.bound = min(
                        sig_scope.bound, self.profile.self_check_scope
                    )
            analyzer = Analyzer(reduced)
        except (AlloyError, RecursionError):
            return False
        for command in analyzer.info.commands:
            expected = (
                command.expect == 1
                if command.expect is not None
                else command.kind == "run"
            )
            try:
                result = analyzer.run_command(command)
            except (AlloyError, RecursionError):
                return False
            if result.sat != expected:
                return False
        return True

    @staticmethod
    def _paragraph_relations(module: Module) -> dict[str, set[str]]:
        """Relation/set names mentioned by each named paragraph."""
        result: dict[str, set[str]] = {}
        for paragraph in module.paragraphs:
            name = getattr(paragraph, "name", None)
            if name is None:
                names = getattr(paragraph, "names", None)
                name = names[0] if names else None
            if name is None:
                continue
            result[name] = {
                getattr(n, "name")
                for n in paragraph.walk()
                if isinstance(getattr(n, "name", None), str)
            }
        return result

    @staticmethod
    def _owning_paragraph_name(module: Module, mutant: Mutant) -> str | None:
        if not mutant.path:
            return None
        head = mutant.path[0]
        try:
            paragraph = get_at(module, (head,))
        except (IndexError, AttributeError):
            return None
        name = getattr(paragraph, "name", None)
        if name is None:
            names = getattr(paragraph, "names", None)
            if names:
                return names[0]
        return name

    @staticmethod
    def _refutes(module: Module, instances: list[Instance]) -> float:
        """Fraction of quoted counterexamples the candidate now rejects."""
        try:
            info = resolve_module(module)
        except (AlloyError, RecursionError):
            return 0.0
        rejected = 0
        for instance in instances:
            try:
                if not Evaluator(info, instance).facts_hold():
                    rejected += 1
            except AlloyError:
                continue
        return rejected / len(instances) if instances else 0.0

    def _second_edit(self, module: Module, rng: random.Random) -> Module | None:
        try:
            info = resolve_module(module)
        except (AlloyError, RecursionError):
            return None
        mutator = Mutator(module, info)
        followups = list(mutator.all_mutants(limit=20))
        if not followups:
            return None
        return rng.choice(followups).module

    # -- response rendering -------------------------------------------------------

    def _explanation(self, chosen: Mutant, rng: random.Random) -> str:
        openers = [
            "I reviewed the specification and found a likely fault.",
            "After analyzing the constraints, I identified the issue.",
            "Here is the repaired specification.",
            "The fault appears to be in one of the constraints; I have fixed it.",
        ]
        return f"{rng.choice(openers)} The change applied: {chosen.description}."

    def _render(self, module: Module, rng: random.Random, prose: str) -> str:
        text = print_module(module)
        roll = rng.random()
        if roll < self.profile.malformed_rate:
            # Truncated emission: the failure mode the study's specialized
            # parser had to survive.
            cut = max(10, int(len(text) * 0.6))
            return f"{prose}\n```alloy\n{text[:cut]}"
        if roll < self.profile.malformed_rate + 0.07:
            # Unfenced code after prose.
            return f"{prose}\n\n{text}"
        fence_tag = rng.choice(["alloy", "als", "", "java"])
        trailer = (
            "\nLet me know if further adjustments are needed."
            if rng.random() < self.profile.chatter_rate
            else ""
        )
        return f"{prose}\n```{fence_tag}\n{text}```{trailer}"
