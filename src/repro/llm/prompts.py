"""Prompt construction for the LLM-based repair techniques.

Single-round prompting follows Hasan et al. (2023): one zero-shot prompt
containing the faulty specification plus a combination of three optional
hints — bug location (Loc), a fix description (Fix), and an assertion the
fix must satisfy (Pass).  Five settings are studied: Loc+Fix, Loc, Pass,
None, and Loc+Pass.

Multi-round prompting follows Alhanahnah et al. (2024): a Repair Agent in a
dialogue whose follow-up turns carry Alloy Analyzer feedback at one of three
levels — No-feedback (binary), Generic-feedback (templated counterexample
summary), or Auto-feedback (a second Prompt Agent writes tailored guidance).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.analyzer.instance import Instance
from repro.llm.client import Conversation


class PromptSetting(enum.Enum):
    """The five single-round hint combinations of the study."""

    LOC_FIX = "Loc+Fix"
    LOC = "Loc"
    PASS = "Pass"
    NONE = "None"
    LOC_PASS = "Loc+Pass"

    @property
    def wants_location(self) -> bool:
        return self in (
            PromptSetting.LOC_FIX,
            PromptSetting.LOC,
            PromptSetting.LOC_PASS,
        )

    @property
    def wants_fix(self) -> bool:
        return self is PromptSetting.LOC_FIX

    @property
    def wants_pass(self) -> bool:
        return self in (PromptSetting.PASS, PromptSetting.LOC_PASS)


class FeedbackLevel(enum.Enum):
    """The three multi-round feedback settings of the study."""

    NONE = "None"
    GENERIC = "Generic"
    AUTO = "Auto"


@dataclass(frozen=True)
class RepairHints:
    """Benchmark-provided information about the seeded fault."""

    location: str | None = None
    fix_description: str | None = None
    passing_assertion: str | None = None


@dataclass
class CommandReport:
    """Analyzer outcome for one command, as shown in feedback."""

    name: str
    kind: str
    expected_sat: bool
    actual_sat: bool
    counterexamples: list[Instance] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.expected_sat == self.actual_sat


@dataclass
class AnalyzerReport:
    """Full analyzer feedback for one candidate specification."""

    compiled: bool
    error: str | None = None
    commands: list[CommandReport] = field(default_factory=list)

    @property
    def all_pass(self) -> bool:
        return self.compiled and all(c.ok for c in self.commands)


_SYSTEM_PROMPT = (
    "You are an expert in the Alloy specification language. "
    "You repair faulty Alloy specifications. Always answer with the "
    "complete fixed specification in a fenced code block."
)


def single_round_prompt(
    spec_text: str, setting: PromptSetting, hints: RepairHints
) -> Conversation:
    """Build the zero-shot single-round conversation."""
    parts = [
        "The following Alloy specification contains a fault. "
        "Repair it so that all of its commands behave as intended.",
        "```alloy",
        spec_text.rstrip(),
        "```",
    ]
    if setting.wants_location and hints.location:
        parts.append(f"Bug location: {hints.location}")
    if setting.wants_fix and hints.fix_description:
        parts.append(f"Fix description: {hints.fix_description}")
    if setting.wants_pass and hints.passing_assertion:
        parts.append(
            "The repaired specification must make the assertion "
            f"'{hints.passing_assertion}' pass."
        )
    parts.append("Return the full corrected specification.")
    conversation = Conversation()
    conversation.add("system", _SYSTEM_PROMPT)
    conversation.add("user", "\n".join(parts))
    return conversation


def initial_multi_round_prompt(
    spec_text: str, hints: RepairHints | None = None
) -> Conversation:
    """The Repair Agent's opening turn.

    The study's multi-round protocol gives no hints; the *pipeline hybrid*
    extension (traditional fault localization feeding the LLM) passes a
    location hint here."""
    conversation = Conversation()
    conversation.add("system", _SYSTEM_PROMPT)
    body = (
        "The following Alloy specification is faulty: at least one of its "
        "commands does not behave as expected. Propose a repaired "
        "specification.\n```alloy\n" + spec_text.rstrip() + "\n```"
    )
    if hints is not None and hints.location:
        body += f"\nBug location: {hints.location}"
    conversation.add("user", body)
    return conversation


def render_generic_feedback(report: AnalyzerReport) -> str:
    """The Generic-feedback template: a developer-style analyzer summary."""
    if not report.compiled:
        return (
            "Your specification did not compile. The analyzer reported:\n"
            f"{report.error}\n"
            "Please fix the specification and return it in full."
        )
    lines = ["The Alloy Analyzer reports that the fix is not correct yet:"]
    for command in report.commands:
        if command.ok:
            lines.append(
                f"- {command.kind} {command.name}: OK "
                f"({'SAT' if command.actual_sat else 'UNSAT'} as expected)"
            )
            continue
        expected = "SAT" if command.expected_sat else "UNSAT"
        actual = "SAT" if command.actual_sat else "UNSAT"
        lines.append(
            f"- {command.kind} {command.name}: expected {expected}, got {actual}"
        )
        for index, instance in enumerate(command.counterexamples[:2]):
            lines.append(f"  counterexample {index + 1}:")
            for row in instance.describe().splitlines():
                lines.append(f"    {row}")
    lines.append("Please provide a corrected full specification.")
    return "\n".join(lines)


def render_no_feedback(report: AnalyzerReport) -> str:
    """The No-feedback message: a bare binary verdict."""
    if report.all_pass:
        return "The fix is correct."
    return (
        "The fix is not correct. Please provide another corrected full "
        "specification."
    )


def prompt_agent_conversation(
    candidate_text: str, report: AnalyzerReport
) -> Conversation:
    """The Prompt Agent's task: turn an analyzer report into tailored advice.

    This is the AI-to-AI leg of the Auto-feedback setting."""
    conversation = Conversation()
    conversation.add(
        "system",
        "You are an expert Alloy debugging assistant. Given a candidate "
        "specification and the Alloy Analyzer's report, write concise, "
        "specific guidance that helps another agent repair the "
        "specification. Point at the constraint you believe is wrong.",
    )
    body = [
        "Candidate specification:",
        "```alloy",
        candidate_text.rstrip(),
        "```",
        "Analyzer report:",
        render_generic_feedback(report),
        "Write targeted repair guidance.",
    ]
    conversation.add("user", "\n".join(body))
    return conversation
