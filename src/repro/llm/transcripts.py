"""Conversation transcript recording.

The study's artifact archives every prompt/response exchanged with the
models.  :class:`TranscriptRecorder` wraps any :class:`LLMClient` and
captures each exchange; transcripts can be exported/imported as JSONL, and
a :class:`ReplayClient` turns an exported transcript back into a client —
which makes any LLM-dependent experiment exactly re-runnable without the
model.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.llm.client import Conversation, LLMClient


@dataclass
class Exchange:
    """One request/response pair."""

    messages: list[dict]
    response: str


@dataclass
class TranscriptRecorder:
    """Records every exchange passing through a client."""

    inner: LLMClient
    exchanges: list[Exchange] = field(default_factory=list)

    def complete(self, conversation: Conversation) -> str:
        response = self.inner.complete(conversation)
        self.exchanges.append(
            Exchange(
                messages=[
                    {"role": m.role, "content": m.content}
                    for m in conversation.messages
                ],
                response=response,
            )
        )
        return response

    def save(self, path: str | Path) -> None:
        """Export all exchanges as JSONL."""
        with Path(path).open("w") as handle:
            for exchange in self.exchanges:
                handle.write(
                    json.dumps(
                        {
                            "messages": exchange.messages,
                            "response": exchange.response,
                        }
                    )
                    + "\n"
                )

    @classmethod
    def load_exchanges(cls, path: str | Path) -> list[Exchange]:
        """Read a transcript back, skipping lines that do not parse.

        A transcript written by a crashed run can end in a torn line, and
        hand-edited archives accumulate damage; losing one exchange is
        recoverable (the replay client fails loudly on the missing key),
        losing the whole transcript is not.  Skipped lines are counted on
        the ``transcripts.corrupt_lines`` metric so damage is visible."""
        exchanges = []
        corrupt = 0
        with Path(path).open() as handle:
            for line in handle:
                if not line.strip():
                    continue
                try:
                    data = json.loads(line)
                    messages = data["messages"]
                    response = data["response"]
                    if not isinstance(messages, list) or not isinstance(
                        response, str
                    ):
                        raise TypeError("malformed exchange record")
                except (json.JSONDecodeError, KeyError, TypeError):
                    corrupt += 1
                    continue
                exchanges.append(Exchange(messages=messages, response=response))
        if corrupt and obs.get_metrics().enabled:
            obs.counter("transcripts.corrupt_lines").inc(corrupt)
        return exchanges


class ReplayClient:
    """Replays a recorded transcript.

    Responses are matched by exact conversation prefix; unseen conversations
    raise — replay is deterministic or it fails loudly."""

    def __init__(self, exchanges: list[Exchange]) -> None:
        self._by_key: dict[str, list[str]] = {}
        for exchange in exchanges:
            key = self._key(exchange.messages)
            self._by_key.setdefault(key, []).append(exchange.response)

    @staticmethod
    def _key(messages: list[dict]) -> str:
        return json.dumps(messages, sort_keys=True)

    @classmethod
    def from_file(cls, path: str | Path) -> "ReplayClient":
        return cls(TranscriptRecorder.load_exchanges(path))

    def complete(self, conversation: Conversation) -> str:
        key = self._key(
            [{"role": m.role, "content": m.content} for m in conversation.messages]
        )
        responses = self._by_key.get(key)
        if not responses:
            raise KeyError(
                "no recorded response for this conversation "
                f"({len(conversation.messages)} messages)"
            )
        # Repeated identical conversations replay in recorded order.
        return responses.pop(0) if len(responses) > 1 else responses[0]
