"""Static pruning of repair candidates.

A candidate patch that *introduces* a statically provable infeasibility —
a fact set with no instances under any scope, a relation declared over an
empty domain, a cardinality constraint the interval bounds refute — is a
semantic dead end the search gains nothing by solving.
:class:`CandidateFilter` diffs a candidate's lint findings against the
original module's and vetoes candidates whose *new* findings come from
pruning-eligible rules (:attr:`~repro.analysis.diagnostics.Rule.prunes`,
the A5xx cardinality family).  Merely *dead* constructs (A2xx/A3xx: empty
joins, vacuous quantifiers, tautologies) are reported but never veto — a
passing repair can carry one in an unrelated paragraph, and vetoing it
would change which candidate the search selects, breaking the
byte-identical-matrix contract of the ``--no-static-prune`` ablation.

The diff is keyed on :meth:`Diagnostic.key`, which ignores source positions:
mutations shift line numbers without changing meanings, and pre-existing
findings in the faulty spec must never veto its own repair.

Pruning is on by default and disabled ambiently via :func:`pruning`
(a context manager) so the experiment engine can thread a single
``--no-static-prune`` bit through serial, thread, and process executors
without touching every tool signature.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Iterator

from repro.alloy.nodes import Module
from repro.alloy.resolver import ModuleInfo, resolve_module
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.lint import lint_module

_STATE = threading.local()

_BASELINE_MEMO = threading.local()

_BASELINE_MEMO_LIMIT = 256
"""Cap on the per-thread baseline memo (entries pin module ASTs)."""


def pruning_enabled() -> bool:
    """Whether candidate-level static pruning is active on this thread."""
    return getattr(_STATE, "enabled", True)


@contextmanager
def pruning(enabled: bool) -> Iterator[None]:
    """Ambiently enable/disable static pruning for the current thread."""
    previous = pruning_enabled()
    _STATE.enabled = enabled
    try:
        yield
    finally:
        _STATE.enabled = previous


class CandidateFilter:
    """Vetoes repair candidates that introduce dead semantics.

    One filter is built per faulty module (its baseline findings are computed
    once) and consulted for every candidate the generators produce.
    """

    def __init__(
        self,
        module: Module,
        info: ModuleInfo | None = None,
        *,
        rules: frozenset[str] | None = None,
    ) -> None:
        if info is None:
            info = resolve_module(module)
        self._baseline = _baseline_findings(module, info, rules)

    def veto(
        self, candidate: Module, info: ModuleInfo | None = None
    ) -> Diagnostic | None:
        """The first *new* prunable finding in ``candidate``, else ``None``.

        Respects the ambient :func:`pruning` switch: when disabled, every
        candidate passes.  Lint failures never veto — a candidate the lint
        engine cannot process falls through to the dynamic pipeline, which
        is the layer equipped to report it.
        """
        if not pruning_enabled():
            return None
        try:
            findings = lint_module(candidate, info)
        except Exception:
            return None
        for diagnostic in findings:
            if not diagnostic.rule.prunes:
                continue
            if diagnostic.key() in self._baseline:
                continue
            return diagnostic
        return None


def _baseline_findings(
    module: Module, info: ModuleInfo, rules: frozenset[str] | None
) -> frozenset[tuple[str, str, str]]:
    """The module's own lint findings, memoized per (module identity,
    rule-set).

    ICEBAR and the selector drive several inner tools over the same task
    module, and each builds its own :class:`CandidateFilter`; the memo
    makes every build after the first free and counts the reuse under
    ``analysis.baseline_lint_reuse``.
    """
    memo = getattr(_BASELINE_MEMO, "entries", None)
    if memo is None:
        memo = _BASELINE_MEMO.entries = OrderedDict()
    key = (id(module), rules)
    entry = memo.get(key)
    if entry is not None and entry[0] is module:
        memo.move_to_end(key)
        from repro import obs

        obs.counter("analysis.baseline_lint_reuse").inc()
        return entry[1]
    findings = lint_module(
        module, info, rules=set(rules) if rules is not None else None
    )
    baseline = frozenset(d.key() for d in findings)
    memo[key] = (module, baseline)
    if len(memo) > _BASELINE_MEMO_LIMIT:
        memo.popitem(last=False)
    return baseline


def record_pruned(diagnostic: Diagnostic) -> None:
    """Count one statically vetoed candidate under ``analysis.pruned_typed``.

    The ``rule`` label carries the winning rule name; the ambient technique
    label (installed by :class:`repro.repair.base.RepairTool`) attributes
    the count to BeAFix/ATR/… in traces and ``repro profile``.
    """
    from repro import obs

    obs.counter("analysis.pruned_typed", rule=diagnostic.rule.name).inc()
