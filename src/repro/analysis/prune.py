"""Static pruning of repair candidates.

A candidate patch that *introduces* a semantically dead construct — a join
that can never produce tuples, a quantifier over a provably empty domain, a
tautological replacement — cannot change the meaning of the specification in
a useful way, so translating and solving it is wasted budget.
:class:`CandidateFilter` diffs a candidate's lint findings against the
original module's and vetoes candidates whose *new* findings come from
pruning-eligible rules (:attr:`~repro.analysis.diagnostics.Rule.prunes`).

The diff is keyed on :meth:`Diagnostic.key`, which ignores source positions:
mutations shift line numbers without changing meanings, and pre-existing
findings in the faulty spec must never veto its own repair.

Pruning is on by default and disabled ambiently via :func:`pruning`
(a context manager) so the experiment engine can thread a single
``--no-static-prune`` bit through serial, thread, and process executors
without touching every tool signature.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from repro.alloy.nodes import Module
from repro.alloy.resolver import ModuleInfo, resolve_module
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.lint import lint_module

_STATE = threading.local()


def pruning_enabled() -> bool:
    """Whether candidate-level static pruning is active on this thread."""
    return getattr(_STATE, "enabled", True)


@contextmanager
def pruning(enabled: bool) -> Iterator[None]:
    """Ambiently enable/disable static pruning for the current thread."""
    previous = pruning_enabled()
    _STATE.enabled = enabled
    try:
        yield
    finally:
        _STATE.enabled = previous


class CandidateFilter:
    """Vetoes repair candidates that introduce dead semantics.

    One filter is built per faulty module (its baseline findings are computed
    once) and consulted for every candidate the generators produce.
    """

    def __init__(self, module: Module, info: ModuleInfo | None = None) -> None:
        if info is None:
            info = resolve_module(module)
        self._baseline: frozenset[tuple[str, str, str]] = frozenset(
            d.key() for d in lint_module(module, info)
        )

    def veto(
        self, candidate: Module, info: ModuleInfo | None = None
    ) -> Diagnostic | None:
        """The first *new* prunable finding in ``candidate``, else ``None``.

        Respects the ambient :func:`pruning` switch: when disabled, every
        candidate passes.  Lint failures never veto — a candidate the lint
        engine cannot process falls through to the dynamic pipeline, which
        is the layer equipped to report it.
        """
        if not pruning_enabled():
            return None
        try:
            findings = lint_module(candidate, info)
        except Exception:
            return None
        for diagnostic in findings:
            if not diagnostic.rule.prunes:
                continue
            if diagnostic.key() in self._baseline:
                continue
            return diagnostic
        return None


def record_pruned(diagnostic: Diagnostic) -> None:
    """Count one statically vetoed candidate under ``analysis.pruned_typed``.

    The ``rule`` label carries the winning rule name; the ambient technique
    label (installed by :class:`repro.repair.base.RepairTool`) attributes
    the count to BeAFix/ATR/… in traces and ``repro profile``.
    """
    from repro import obs

    obs.counter("analysis.pruned_typed", rule=diagnostic.rule.name).inc()
