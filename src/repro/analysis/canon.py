"""Semantic canonicalization of candidate modules for oracle dedup.

Repair generators emit floods of candidates that differ syntactically but
not semantically: renamed binders, reordered commutative operands, double
negations, unions with a statically-empty arm.  Each duplicate costs a
full oracle evaluation.  :func:`canonical_key` maps a module to a hash of
its *normal form* so the oracle can check one representative per
equivalence class and replay the verdict for the rest.

The normal form is a deterministic s-expression rendering with:

- alpha-renamed binders (``v0``, ``v1``, … in binding order),
- commutative operands (``+ & and or iff``, ``=``/``!=`` sides) flattened,
  sorted, and deduplicated,
- double-negation / double-transpose / nested-closure elimination,
- constant folding driven by :mod:`repro.analysis.cardinality`:
  statically-empty expressions become ``∅``, statically-decided
  comparisons and multiplicity tests become ``⊤``/``⊥``, and boolean
  identities propagate them upward.

Every rewrite preserves semantics in *all* instances at all scopes, so
canonically-equal candidates are guaranteed to receive identical oracle
verdicts — the property the dedup cache and its CI byte-equality gate
depend on.  Canonicalization failures degrade to the exact printed text,
which still deduplicates syntactic duplicates.

The ambient :func:`canonicalizing` switch mirrors
:func:`repro.analysis.prune.pruning`: the experiment engine threads one
``--no-canon`` bit through every executor without touching tool
signatures.  Like ``--no-incremental`` (and unlike ``--no-static-prune``),
the bit is excluded from result cache keys because it cannot change
outcomes, only the work needed to reach them.
"""

from __future__ import annotations

import hashlib
import threading
from contextlib import contextmanager
from typing import Iterator

from repro.alloy.nodes import (
    AssertDecl,
    BinaryExpr,
    BinOp,
    Block,
    BoolBin,
    CardExpr,
    CmpOp,
    Command,
    Compare,
    Comprehension,
    Decl,
    Expr,
    FactDecl,
    Formula,
    FunCall,
    FunDecl,
    IdenExpr,
    ImpliesElse,
    IntLit,
    Let,
    LogicOp,
    Module,
    Mult,
    MultTest,
    NameExpr,
    NoneExpr,
    Not,
    PredCall,
    PredDecl,
    Quantified,
    SigDecl,
    UnaryExpr,
    UnivExpr,
    UnOp,
)
from repro.alloy.pretty import print_module
from repro.alloy.resolver import ModuleInfo, resolve_module
from repro.analysis.cardinality import (
    SCALAR,
    CardinalityAnalyzer,
    Interval,
    cardinality_analyzer,
    _MULT_INTERVALS,
)

_STATE = threading.local()

TRUE = "⊤"
FALSE = "⊥"
EMPTY = "∅"

_FLIPPED = {CmpOp.GT: CmpOp.LT, CmpOp.GTE: CmpOp.LTE}


def canonical_enabled() -> bool:
    """Whether semantic candidate dedup is active on this thread."""
    return getattr(_STATE, "enabled", True)


@contextmanager
def canonicalizing(enabled: bool) -> Iterator[None]:
    """Ambiently enable/disable semantic dedup for the current thread."""
    previous = canonical_enabled()
    _STATE.enabled = enabled
    try:
        yield
    finally:
        _STATE.enabled = previous


def shared_verdicts() -> dict | None:
    """The shard-scoped oracle cache, when :func:`verdict_sharing` is active.

    ``None`` means no sharing scope is installed and each
    :class:`~repro.repair.base.PropertyOracle` falls back to its private
    per-task cache.
    """
    return getattr(_STATE, "shared_verdicts", None)


@contextmanager
def verdict_sharing() -> Iterator[None]:
    """Share oracle results across every tool run in the dynamic extent.

    The experiment engine runs each shard's techniques sequentially over
    the *same* task, so BeAFix, ATR, and any inner tools ICEBAR or the
    selector spawn all re-derive the same facts: the task's failing
    evidence, and verdicts for candidates that several generators emit.
    Installing this scope around a shard lets :class:`PropertyOracle`
    instances publish those results into one dictionary keyed by the task
    fingerprint — verdicts under the candidate's canonical form,
    instance-producing evidence under the exact printed text (instances
    depend on the encoding, so only syntactic identity may share them).

    The scope is per-shard (one spec), so the cache's lifetime bounds its
    size, and it is thread-local like the :func:`canonicalizing` switch it
    extends: lookups happen only while canonicalization is enabled and no
    chaos scope is active.
    """
    previous = getattr(_STATE, "shared_verdicts", None)
    _STATE.shared_verdicts = {}
    try:
        yield
    finally:
        _STATE.shared_verdicts = previous


def canonical_key(module: Module, info: ModuleInfo | None = None) -> str | None:
    """A stable hash of the module's semantic normal form.

    Falls back to hashing the printed text when normalization fails, and
    to ``None`` (caller skips dedup) when even printing fails.
    """
    try:
        text = canonical_text(module, info)
    except Exception:
        try:
            text = "raw:" + print_module(module)
        except Exception:
            return None
    return hashlib.sha256(text.encode("utf-8", "replace")).hexdigest()


def canonical_text(module: Module, info: ModuleInfo | None = None) -> str:
    """The normal form itself (tests and debugging; callers hash it)."""
    if info is None:
        info = resolve_module(module)
    return _Canonicalizer(cardinality_analyzer(info)).module_text(module)


def record_dedup_hit(count: int = 1) -> None:
    """Count oracle queries replayed from the dedup cache.

    Evidence replays save one solver command run per replayed query, so
    they pass the number of queries they skipped; plain verdict replays
    count one.  The ambient technique label (installed by ``RepairTool``)
    attributes the hits to BeAFix/ATR/… in traces and ``repro profile``."""
    from repro import obs

    obs.counter("analysis.dedup_hits").inc(count)


class _Canonicalizer:
    """One normalization pass; stateless between paragraphs."""

    def __init__(self, cards: CardinalityAnalyzer) -> None:
        self._cards = cards

    # -- module ---------------------------------------------------------------

    def module_text(self, module: Module) -> str:
        sigs: list[str] = []
        facts: list[str] = []
        named: list[str] = []
        commands: list[str] = []
        for paragraph in module.paragraphs:
            if isinstance(paragraph, SigDecl):
                sigs.append(self._sig(paragraph))
            elif isinstance(paragraph, FactDecl):
                body = self._formula(paragraph.body, {}, {})
                if body != TRUE:
                    facts.append(f"(fact {body})")
            elif isinstance(paragraph, PredDecl):
                named.append(self._callable("pred", paragraph.name, paragraph.params, paragraph.body))
            elif isinstance(paragraph, FunDecl):
                env, ienv = self._param_envs(paragraph.params)
                body = self._expr(paragraph.body, env, ienv)
                params = self._decls(paragraph.params, env, ienv, rebind=False)
                named.append(f"(fun {paragraph.name} {params} {body})")
            elif isinstance(paragraph, AssertDecl):
                body = self._formula(paragraph.body, {}, {})
                named.append(f"(assert {paragraph.name} {body})")
            elif isinstance(paragraph, Command):
                commands.append(self._command(paragraph))
        # Fact order is semantically irrelevant (conjunction); sorting makes
        # reordered candidates collide.  Named paragraphs sort by name.
        facts.sort()
        named.sort()
        return "\n".join(sigs + facts + named + commands)

    def _sig(self, sig: SigDecl) -> str:
        fields = []
        for field_decl in sig.fields:
            fields.append(f"({field_decl.name} {self._decl_type(field_decl.type)})")
        appended = ""
        if sig.appended is not None:
            body = self._formula(sig.appended, {}, {})
            if body != TRUE:
                appended = f" {body}"
        mult = sig.mult.value if sig.mult else "set"
        parent = sig.parent or ""
        names = ",".join(sig.names)
        return (
            f"(sig {names} {mult} abstract={int(sig.abstract)} "
            f"parent={parent} [{' '.join(sorted(fields))}]{appended})"
        )

    def _decl_type(self, decl_type) -> str:
        from repro.alloy.nodes import ArrowType, UnaryType

        if isinstance(decl_type, UnaryType):
            return f"{decl_type.mult.value} {self._expr(decl_type.expr, {}, {})}"
        if isinstance(decl_type, ArrowType):
            return (
                f"({self._decl_type(decl_type.left)} {decl_type.left_mult.value}"
                f"->{decl_type.right_mult.value} {self._decl_type(decl_type.right)})"
            )
        return "?"

    def _callable(self, kind: str, name: str, params: list[Decl], body: Block) -> str:
        env, ienv = self._param_envs(params)
        rendered = self._formula(body, env, ienv)
        decls = self._decls(params, env, ienv, rebind=False)
        return f"({kind} {name} {decls} {rendered})"

    def _command(self, command: Command) -> str:
        scopes = ",".join(
            f"{s.sig}={'exactly ' if s.exact else ''}{s.bound}"
            for s in sorted(command.sig_scopes, key=lambda s: s.sig)
        )
        block = ""
        if command.block is not None:
            block = " " + self._formula(command.block, {}, {})
        return (
            f"(cmd {command.kind} {command.target or ''} scope={command.default_scope}"
            f" [{scopes}] expect={command.expect}{block})"
        )

    def _param_envs(self, params: list[Decl]):
        env: dict[str, str] = {}
        ienv: dict[str, Interval] = {}
        for decl in params:
            for name in decl.names:
                # Parameters keep their names: call sites reference them
                # positionally only through the declaration, and renaming
                # them would merge preds whose arities/type bounds differ.
                env[name] = name
                ienv[name] = SCALAR if decl.mult in (None, Mult.ONE) else _MULT_INTERVALS.get(decl.mult, Interval(0, None))
        return env, ienv

    def _decls(
        self,
        decls: list[Decl],
        env: dict[str, str],
        ienv: dict[str, Interval],
        *,
        rebind: bool,
    ) -> str:
        parts = []
        for decl in decls:
            bound = self._expr(decl.bound, env, ienv)
            names = ",".join(
                env.get(name, name) if not rebind else env[name]
                for name in decl.names
            )
            mult = decl.mult.value if decl.mult else "one"
            disj = "disj " if decl.disj else ""
            parts.append(f"({disj}{names}: {mult} {bound})")
        return "[" + " ".join(parts) + "]"

    # -- formulas -------------------------------------------------------------

    def _formula(
        self, formula: Formula, env: dict[str, str], ienv: dict[str, Interval]
    ) -> str:
        if isinstance(formula, Compare):
            return self._compare(formula, env, ienv)
        if isinstance(formula, MultTest):
            return self._mult_test(formula, env, ienv)
        if isinstance(formula, Not):
            inner = self._formula(formula.operand, env, ienv)
            return _negate(inner)
        if isinstance(formula, BoolBin):
            return self._bool_bin(formula, env, ienv)
        if isinstance(formula, ImpliesElse):
            cond = self._formula(formula.cond, env, ienv)
            then = self._formula(formula.then, env, ienv)
            other = self._formula(formula.other, env, ienv)
            if cond == TRUE:
                return then
            if cond == FALSE:
                return other
            if then == other:
                return then
            return f"(ite {cond} {then} {other})"
        if isinstance(formula, Quantified):
            return self._quantified(formula, env, ienv)
        if isinstance(formula, Let):
            value = self._expr(formula.value, env, ienv)
            inner_env = dict(env)
            inner_env[formula.name] = value
            inner_ienv = dict(ienv)
            inner_ienv[formula.name] = self._cards.interval_of(
                formula.value, ienv
            )
            # Lets are inlined by substitution: `let x = e | f` and the
            # directly-substituted body normalize identically.
            return self._formula(formula.body, inner_env, inner_ienv)
        if isinstance(formula, PredCall):
            args = " ".join(self._expr(a, env, ienv) for a in formula.args)
            return f"(call {formula.name} {args})"
        if isinstance(formula, Block):
            parts = [self._formula(f, env, ienv) for f in formula.formulas]
            return _fold_and(parts)
        return "(?formula)"

    def _compare(
        self, formula: Compare, env: dict[str, str], ienv: dict[str, Interval]
    ) -> str:
        verdict = self._cards.truth(formula, ienv)
        if verdict is True:
            return TRUE
        if verdict is False:
            return FALSE
        op = formula.op
        left_node, right_node = formula.left, formula.right
        if op in _FLIPPED:
            op = _FLIPPED[op]
            left_node, right_node = right_node, left_node
        left = self._expr(left_node, env, ienv)
        right = self._expr(right_node, env, ienv)
        if op in (CmpOp.EQ, CmpOp.NEQ) and right < left:
            left, right = right, left
        if op is CmpOp.EQ and left == right:
            return TRUE
        if op is CmpOp.NEQ and left == right:
            return FALSE
        if op is CmpOp.IN:
            if left == EMPTY:
                return TRUE
            if left == right:
                return TRUE
        if op is CmpOp.NOT_IN:
            if left == EMPTY:
                return FALSE
            if left == right:
                return FALSE
        if op is CmpOp.EQ and right == EMPTY:
            return f"(no {left})"
        if op is CmpOp.NEQ and right == EMPTY:
            return f"(some {left})"
        return f"({op.value} {left} {right})"

    def _mult_test(
        self, formula: MultTest, env: dict[str, str], ienv: dict[str, Interval]
    ) -> str:
        verdict = self._cards.truth(formula, ienv)
        if verdict is True:
            return TRUE
        if verdict is False:
            return FALSE
        operand = self._expr(formula.operand, env, ienv)
        if operand == EMPTY:
            return TRUE if formula.mult in (Mult.NO, Mult.LONE) else FALSE
        return f"({formula.mult.value} {operand})"

    def _bool_bin(
        self, formula: BoolBin, env: dict[str, str], ienv: dict[str, Interval]
    ) -> str:
        left = self._formula(formula.left, env, ienv)
        right = self._formula(formula.right, env, ienv)
        op = formula.op
        if op is LogicOp.AND:
            return _fold_and([left, right])
        if op is LogicOp.OR:
            return _fold_or([left, right])
        if op is LogicOp.IMPLIES:
            if left == TRUE:
                return right
            if left == FALSE or right == TRUE:
                return TRUE
            if right == FALSE:
                return _negate(left)
            return f"(=> {left} {right})"
        if op is LogicOp.IFF:
            if left == right:
                return TRUE
            if left == TRUE:
                return right
            if right == TRUE:
                return left
            if left == FALSE:
                return _negate(right)
            if right == FALSE:
                return _negate(left)
            first, second = sorted((left, right))
            return f"(<=> {first} {second})"
        return f"({op.value} {left} {right})"

    def _quantified(
        self, formula: Quantified, env: dict[str, str], ienv: dict[str, Interval]
    ) -> str:
        inner_env = dict(env)
        inner_ienv = dict(ienv)
        rendered_decls = []
        for decl in formula.decls:
            bound = self._expr(decl.bound, inner_env, inner_ienv)
            names = []
            for name in decl.names:
                fresh = f"v{len(inner_env)}"
                inner_env[name] = fresh
                inner_ienv[name] = CardinalityAnalyzer._binder_interval(decl)
                names.append(fresh)
            mult = decl.mult.value if decl.mult else "one"
            disj = "disj " if decl.disj else ""
            rendered_decls.append(f"({disj}{','.join(names)}: {mult} {bound})")
        body = self._formula(formula.body, inner_env, inner_ienv)
        verdict = self._cards.truth(formula, ienv)
        if verdict is True:
            return TRUE
        if verdict is False:
            return FALSE
        return f"({formula.quant.value} [{' '.join(rendered_decls)}] {body})"

    # -- expressions ----------------------------------------------------------

    def _expr(
        self, expr: Expr, env: dict[str, str], ienv: dict[str, Interval]
    ) -> str:
        if isinstance(expr, NameExpr):
            renamed = env.get(expr.name, expr.name)
            if renamed == expr.name and self._statically_empty(expr, ienv):
                return EMPTY
            return renamed
        if isinstance(expr, NoneExpr):
            return EMPTY
        if isinstance(expr, UnivExpr):
            return "univ"
        if isinstance(expr, IdenExpr):
            return "iden"
        if isinstance(expr, IntLit):
            return str(expr.value)
        if isinstance(expr, CardExpr):
            operand = self._expr(expr.operand, env, ienv)
            if operand == EMPTY:
                return "0"
            interval = self._cards.interval_of(expr.operand, ienv)
            if interval.lo == interval.hi:
                return str(interval.lo)
            return f"(# {operand})"
        if isinstance(expr, UnaryExpr):
            return self._unary(expr, env, ienv)
        if isinstance(expr, BinaryExpr):
            return self._binary(expr, env, ienv)
        if isinstance(expr, FunCall):
            args = " ".join(self._expr(a, env, ienv) for a in expr.args)
            return f"(apply {expr.name} {args})" if args else f"(apply {expr.name})"
        if isinstance(expr, Comprehension):
            inner_env = dict(env)
            inner_ienv = dict(ienv)
            decls = []
            for decl in expr.decls:
                bound = self._expr(decl.bound, inner_env, inner_ienv)
                names = []
                for name in decl.names:
                    fresh = f"v{len(inner_env)}"
                    inner_env[name] = fresh
                    inner_ienv[name] = SCALAR
                    names.append(fresh)
                disj = "disj " if decl.disj else ""
                decls.append(f"({disj}{','.join(names)}: {bound})")
            body = self._formula(expr.body, inner_env, inner_ienv)
            if body == FALSE:
                return EMPTY
            return f"(set [{' '.join(decls)}] {body})"
        return "(?expr)"

    def _statically_empty(self, expr: Expr, ienv: dict[str, Interval]) -> bool:
        try:
            return self._cards.interval_of(expr, ienv).is_empty
        except Exception:
            return False

    def _unary(
        self, expr: UnaryExpr, env: dict[str, str], ienv: dict[str, Interval]
    ) -> str:
        operand = self._expr(expr.operand, env, ienv)
        if expr.op is UnOp.TRANSPOSE:
            if operand == EMPTY:
                return EMPTY
            if operand == "iden":
                return "iden"
            if operand.startswith("(~ "):
                return operand[3:-1]
            return f"(~ {operand})"
        if expr.op is UnOp.CLOSURE:
            if operand == EMPTY:
                return EMPTY
            if operand.startswith("(^ ") or operand.startswith("(* "):
                return operand
            return f"(^ {operand})"
        # *r = ^r + iden
        if operand == EMPTY or operand == "iden":
            return "iden"
        if operand.startswith("(* "):
            return operand
        if operand.startswith("(^ "):
            return f"(* {operand[3:-1]})"
        return f"(* {operand})"

    def _binary(
        self, expr: BinaryExpr, env: dict[str, str], ienv: dict[str, Interval]
    ) -> str:
        if self._statically_empty(expr, ienv):
            return EMPTY
        left = self._expr(expr.left, env, ienv)
        right = self._expr(expr.right, env, ienv)
        op = expr.op
        if op is BinOp.UNION:
            parts = sorted(
                set(_flatten("(+ ", left) + _flatten("(+ ", right)) - {EMPTY}
            )
            if not parts:
                return EMPTY
            if len(parts) == 1:
                return parts[0]
            return "(+ " + " ".join(parts) + ")"
        if op is BinOp.INTERSECT:
            if left == EMPTY or right == EMPTY:
                return EMPTY
            parts = sorted(set(_flatten("(& ", left) + _flatten("(& ", right)))
            if len(parts) == 1:
                return parts[0]
            return "(& " + " ".join(parts) + ")"
        if op is BinOp.DIFF:
            if left == EMPTY or left == right:
                return EMPTY
            if right == EMPTY:
                return left
            return f"(- {left} {right})"
        if op is BinOp.JOIN:
            if left == EMPTY or right == EMPTY:
                return EMPTY
            if left == "iden":
                return right
            if right == "iden":
                return left
            return f"(. {left} {right})"
        if op is BinOp.PRODUCT:
            if left == EMPTY or right == EMPTY:
                return EMPTY
            return f"(-> {left} {right})"
        if op is BinOp.OVERRIDE:
            if right == EMPTY:
                return left
            if left == EMPTY or left == right:
                return right
            return f"(++ {left} {right})"
        if op is BinOp.DOM_RESTRICT:
            if left == EMPTY or right == EMPTY:
                return EMPTY
            if left == "univ":
                return right
            return f"(<: {left} {right})"
        if op is BinOp.RAN_RESTRICT:
            if left == EMPTY or right == EMPTY:
                return EMPTY
            if right == "univ":
                return left
            return f"(:> {left} {right})"
        return f"({op.value} {left} {right})"


def _negate(inner: str) -> str:
    if inner == TRUE:
        return FALSE
    if inner == FALSE:
        return TRUE
    if inner.startswith("(! "):
        return inner[3:-1]
    return f"(! {inner})"


def _flatten(prefix: str, rendered: str) -> list[str]:
    """Split a same-operator s-expression back into operands (one level is
    enough: operands were themselves flattened when built)."""
    if not rendered.startswith(prefix):
        return [rendered]
    parts: list[str] = []
    depth = 0
    token = ""
    for char in rendered[len(prefix) : -1]:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == " " and depth == 0:
            if token:
                parts.append(token)
            token = ""
        else:
            token += char
    if token:
        parts.append(token)
    return parts


def _fold_and(parts: list[str]) -> str:
    flat: list[str] = []
    for part in parts:
        flat.extend(_flatten("(and ", part))
    unique = sorted(set(flat) - {TRUE})
    if FALSE in unique:
        return FALSE
    if not unique:
        return TRUE
    if len(unique) == 1:
        return unique[0]
    return "(and " + " ".join(unique) + ")"


def _fold_or(parts: list[str]) -> str:
    flat: list[str] = []
    for part in parts:
        flat.extend(_flatten("(or ", part))
    unique = sorted(set(flat) - {FALSE})
    if TRUE in unique:
        return TRUE
    if not unique:
        return FALSE
    if len(unique) == 1:
        return unique[0]
    return "(or " + " ".join(unique) + ")"
