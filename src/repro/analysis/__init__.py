"""Static analysis over the Alloy AST: types, lint, graphs, pruning, dedup.

Public surface:

- :mod:`repro.analysis.reltypes` — bounding-type inference
  (:class:`TypeInferencer`, :class:`RelType`)
- :mod:`repro.analysis.diagnostics` — rule registry and findings
  (:class:`Rule`, :class:`Diagnostic`, :class:`Severity`, :class:`LintError`)
- :mod:`repro.analysis.lint` — the lint engine (:func:`lint_module`,
  :func:`check_module`, :func:`render_diagnostics`)
- :mod:`repro.analysis.depgraph` / :mod:`repro.analysis.slice` — the
  whole-spec dependency graph (:func:`build_depgraph`, :class:`DepGraph`)
  and forward/backward slicing (:func:`backward_slice`,
  :func:`forward_slice`)
- :mod:`repro.analysis.cardinality` — interval-domain abstract
  interpretation of tuple counts (:class:`CardinalityAnalyzer`,
  :class:`Interval`), behind the A5xx lint rules
- :mod:`repro.analysis.prune` — candidate vetoes (:class:`CandidateFilter`,
  :func:`pruning`, :func:`pruning_enabled`)
- :mod:`repro.analysis.canon` — semantic candidate canonicalization for
  oracle dedup (:func:`canonical_key`, :func:`canonicalizing`,
  :func:`canonical_enabled`) and the shard-scoped cross-tool oracle cache
  (:func:`verdict_sharing`)
"""

from repro.analysis.canon import (
    canonical_enabled,
    canonical_key,
    canonical_text,
    canonicalizing,
    verdict_sharing,
)
from repro.analysis.cardinality import (
    CardinalityAnalyzer,
    Interval,
    cardinality_analyzer,
)
from repro.analysis.depgraph import DepGraph, DepNode, build_depgraph
from repro.analysis.diagnostics import (
    Diagnostic,
    LintError,
    Rule,
    Severity,
    all_rules,
    rule_by_name,
)
from repro.analysis.lint import (
    check_module,
    lint_module,
    lint_source,
    render_diagnostics,
)
from repro.analysis.prune import CandidateFilter, pruning, pruning_enabled
from repro.analysis.reltypes import (
    INT_TYPE,
    RelType,
    TypeInferencer,
    empty_type,
    inferencer_for,
    wildcard,
)
from repro.analysis.slice import backward_slice, forward_slice, slice_for

__all__ = [
    "CandidateFilter",
    "CardinalityAnalyzer",
    "DepGraph",
    "DepNode",
    "Diagnostic",
    "INT_TYPE",
    "Interval",
    "LintError",
    "RelType",
    "Rule",
    "Severity",
    "TypeInferencer",
    "all_rules",
    "backward_slice",
    "build_depgraph",
    "canonical_enabled",
    "canonical_key",
    "canonical_text",
    "canonicalizing",
    "cardinality_analyzer",
    "check_module",
    "empty_type",
    "forward_slice",
    "inferencer_for",
    "lint_module",
    "lint_source",
    "pruning",
    "pruning_enabled",
    "render_diagnostics",
    "rule_by_name",
    "slice_for",
    "verdict_sharing",
    "wildcard",
]
