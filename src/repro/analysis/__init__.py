"""Static analysis over the Alloy AST: relational types, lint, pruning.

Public surface:

- :mod:`repro.analysis.reltypes` — bounding-type inference
  (:class:`TypeInferencer`, :class:`RelType`)
- :mod:`repro.analysis.diagnostics` — rule registry and findings
  (:class:`Rule`, :class:`Diagnostic`, :class:`Severity`, :class:`LintError`)
- :mod:`repro.analysis.lint` — the lint engine (:func:`lint_module`,
  :func:`check_module`, :func:`render_diagnostics`)
- :mod:`repro.analysis.prune` — candidate vetoes (:class:`CandidateFilter`,
  :func:`pruning`, :func:`pruning_enabled`)
"""

from repro.analysis.diagnostics import (
    Diagnostic,
    LintError,
    Rule,
    Severity,
    all_rules,
    rule_by_name,
)
from repro.analysis.lint import (
    check_module,
    lint_module,
    lint_source,
    render_diagnostics,
)
from repro.analysis.prune import CandidateFilter, pruning, pruning_enabled
from repro.analysis.reltypes import (
    INT_TYPE,
    RelType,
    TypeInferencer,
    empty_type,
    inferencer_for,
    wildcard,
)

__all__ = [
    "CandidateFilter",
    "Diagnostic",
    "INT_TYPE",
    "LintError",
    "RelType",
    "Rule",
    "Severity",
    "TypeInferencer",
    "all_rules",
    "check_module",
    "empty_type",
    "inferencer_for",
    "lint_module",
    "lint_source",
    "pruning",
    "pruning_enabled",
    "render_diagnostics",
    "rule_by_name",
    "wildcard",
]
