"""Relational type inference over the Alloy AST.

The resolver (:mod:`repro.alloy.resolver`) checks *arity* — every expression
gets an integer.  That is enough to reject `a.b` where the column counts do
not line up, but it cannot see that ``Student.teaches`` is empty because no
``Student`` atom ever appears in the first column of ``teaches``.  This
module computes the richer fact: a *bounding type* for every expression — a
set of column-wise products of signature names that over-approximates the
tuples the expression can ever contain, in the spirit of Edwards, Jackson &
Torlak's type system for Alloy.

A :class:`RelType` is a union of products.  Each product is a tuple of
column types, each column a signature name (or the :data:`UNIV` wildcard).
The subsignature hierarchy supplies the lattice: two columns *overlap* when
one names an ancestor of the other, and their *meet* is the more specific
of the two.  An expression whose bounding type has no products is
statically empty — the semantic core behind the lint rules that prune
dead repair candidates before any solver call.

Inference is total over resolved modules: anything the rules cannot track
precisely widens to a product of :data:`UNIV` columns rather than failing,
so the analysis never rejects an expression the resolver accepted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloy.nodes import (
    ArrowType,
    BinaryExpr,
    BinOp,
    CardExpr,
    Comprehension,
    Decl,
    DeclType,
    Expr,
    FunCall,
    IdenExpr,
    IntLit,
    NameExpr,
    NoneExpr,
    UnaryExpr,
    UnaryType,
    UnivExpr,
    UnOp,
)
from repro.alloy.resolver import INT_ARITY, ModuleInfo

UNIV = "univ"
"""The wildcard column: overlaps every signature."""

_MAX_PRODUCTS = 64
"""Union-of-products cap; beyond it a type widens to one wildcard product.
Keeps inference linear on pathological unions without losing soundness
(widening only ever *grows* the bounding type)."""


@dataclass(frozen=True)
class RelType:
    """A bounding type: an arity plus a union of column products.

    ``arity == INT_ARITY`` marks an integer expression (no products).
    A relational type with no products is *statically empty*: no instance
    in any scope can put a tuple into the expression.
    """

    arity: int
    products: frozenset[tuple[str, ...]]

    @property
    def is_int(self) -> bool:
        return self.arity == INT_ARITY

    @property
    def empty(self) -> bool:
        """Statically empty: provably no tuples in any instance."""
        return self.arity != INT_ARITY and not self.products

    def columns(self, index: int) -> set[str]:
        """The set of signature names appearing in one column."""
        return {product[index] for product in self.products}

    def describe(self) -> str:
        """Human-readable form used in diagnostics: ``{A->B + C->D}``."""
        if self.is_int:
            return "Int"
        if self.empty:
            return "{} (empty)"
        rendered = sorted("->".join(product) for product in self.products)
        return "{" + " + ".join(rendered) + "}"


INT_TYPE = RelType(arity=INT_ARITY, products=frozenset())
"""The type of every integer-valued expression."""


def empty_type(arity: int) -> RelType:
    return RelType(arity=arity, products=frozenset())


def wildcard(arity: int) -> RelType:
    """The widest type of a given arity (a single all-``univ`` product)."""
    return RelType(arity=arity, products=frozenset({(UNIV,) * arity}))


class TypeInferencer:
    """Infers bounding types against one resolved module.

    Instances are cheap; per-module caches (ancestor chains, sig types)
    build lazily.  The same inferencer may be reused across many
    expressions of the same module — the repair pipeline does exactly
    that when vetting candidate batches.
    """

    def __init__(self, info: ModuleInfo) -> None:
        self._info = info
        self._ancestors: dict[str, frozenset[str]] = {}

    # -- the signature lattice ------------------------------------------------

    def _ancestry(self, sig: str) -> frozenset[str]:
        cached = self._ancestors.get(sig)
        if cached is None:
            cached = frozenset(self._info.ancestors(sig))
            self._ancestors[sig] = cached
        return cached

    def overlaps(self, a: str, b: str) -> bool:
        """Can columns ``a`` and ``b`` share an atom?

        True iff one is an ancestor of the other (Alloy atoms belong to a
        single top-level hierarchy chain), or either is :data:`UNIV`.
        """
        if a == b or a == UNIV or b == UNIV:
            return True
        return a in self._ancestry(b) or b in self._ancestry(a)

    def meet(self, a: str, b: str) -> str | None:
        """The more specific of two overlapping columns (else ``None``)."""
        if a == b:
            return a
        if a == UNIV:
            return b
        if b == UNIV:
            return a
        if a in self._ancestry(b):
            return b
        if b in self._ancestry(a):
            return a
        return None

    def sig_type(self, name: str) -> RelType:
        """The unary bounding type of one signature.

        An abstract signature with no children is statically empty — every
        atom of an abstract signature must belong to some child.
        """
        info = self._info.sigs[name]
        if info.abstract and not info.children:
            return empty_type(1)
        return RelType(arity=1, products=frozenset({(name,)}))

    # -- inference ------------------------------------------------------------

    def type_of(self, expr: Expr, env: dict[str, RelType] | None = None) -> RelType:
        """The bounding type of ``expr`` under binder environment ``env``.

        Total over resolved expressions: unknown constructs widen to a
        wildcard of the resolver's arity instead of raising.
        """
        env = env or {}
        if isinstance(expr, NameExpr):
            return self._name_type(expr, env)
        if isinstance(expr, NoneExpr):
            return empty_type(1)
        if isinstance(expr, UnivExpr):
            return wildcard(1)
        if isinstance(expr, IdenExpr):
            return wildcard(2)
        if isinstance(expr, (IntLit, CardExpr)):
            return INT_TYPE
        if isinstance(expr, UnaryExpr):
            return self._unary_type(expr, env)
        if isinstance(expr, BinaryExpr):
            return self._binary_type(expr, env)
        if isinstance(expr, FunCall):
            return self._call_type(expr, env)
        if isinstance(expr, Comprehension):
            return self._comprehension_type(expr, env)
        return self._widened(expr, env)

    def decl_env(
        self, decls: list[Decl], env: dict[str, RelType]
    ) -> dict[str, RelType]:
        """Extend ``env`` with quantifier/parameter binder types."""
        inner = dict(env)
        for decl in decls:
            bound = self.type_of(decl.bound, inner)
            for name in decl.names:
                inner[name] = bound
        return inner

    def decl_type_products(self, decl_type: DeclType) -> RelType:
        """The bounding type a declared field/result type denotes."""
        if isinstance(decl_type, UnaryType):
            if isinstance(decl_type.expr, NameExpr) and (
                decl_type.expr.name in self._info.sigs
            ):
                return self.sig_type(decl_type.expr.name)
            return wildcard(1)
        if isinstance(decl_type, ArrowType):
            return self._product(
                self.decl_type_products(decl_type.left),
                self.decl_type_products(decl_type.right),
            )
        return wildcard(1)

    # -- per-node rules -------------------------------------------------------

    def _name_type(self, expr: NameExpr, env: dict[str, RelType]) -> RelType:
        name = expr.name
        if name in env:
            return env[name]
        if name in self._info.sigs:
            return self.sig_type(name)
        if name in self._info.fields:
            field = self._info.fields[name]
            products = [self.sig_type(column) for column in field.columns]
            if any(p.empty for p in products):
                return empty_type(field.arity)
            return RelType(
                arity=field.arity, products=frozenset({field.columns})
            )
        if name in self._info.funs and not self._info.funs[name].params:
            return self.decl_type_products(self._info.funs[name].result)
        return wildcard(1)

    def _unary_type(self, expr: UnaryExpr, env: dict[str, RelType]) -> RelType:
        operand = self.type_of(expr.operand, env)
        if operand.arity != 2 or any(len(p) != 2 for p in operand.products):
            # Transpose/closure of a non-binary operand has no relational
            # meaning, and a malformed binary type (mixed-length products
            # from an ill-arity union) would crash the closure fixpoint.
            # Raise a *classified* error (`spec.lint`) with the operator's
            # position: candidate ASTs reach this code without passing the
            # resolver, and the lint engine degrades it to a wildcard.
            from repro.analysis.diagnostics import LintError

            raise LintError(
                f"'{expr.op.value}' requires a well-formed binary operand "
                f"(got arity {operand.arity})",
                pos=expr.pos,
            )
        if expr.op is UnOp.TRANSPOSE:
            return RelType(
                arity=2,
                products=frozenset(tuple(reversed(p)) for p in operand.products),
            )
        closed = self._closure(operand)
        if expr.op is UnOp.CLOSURE:
            return closed
        # *r  =  ^r + iden: the identity contribution covers all of univ.
        return self._union(closed, wildcard(2))

    def _closure(self, operand: RelType) -> RelType:
        """Fixpoint of ``T ∪ T.T`` over the finite product alphabet."""
        products = set(operand.products)
        while True:
            grown = set(products)
            for a in products:
                for b in products:
                    if self.overlaps(a[1], b[0]):
                        grown.add((a[0], b[1]))
            if grown == products:
                return self._capped(RelType(arity=2, products=frozenset(products)))
            products = grown

    def _binary_type(self, expr: BinaryExpr, env: dict[str, RelType]) -> RelType:
        left = self.type_of(expr.left, env)
        right = self.type_of(expr.right, env)
        op = expr.op
        if op in (BinOp.UNION, BinOp.DIFF) and left.is_int and right.is_int:
            return INT_TYPE  # integer add/sub share the +/- spelling
        if left.is_int or right.is_int:
            return wildcard(max(left.arity, right.arity, 1))
        if op is BinOp.UNION:
            return self._union(left, right)
        if op is BinOp.DIFF:
            return left  # removal cannot add tuples
        if op is BinOp.INTERSECT:
            return self.intersect(left, right)
        if op is BinOp.OVERRIDE:
            return self._union(left, right)
        if op is BinOp.JOIN:
            return self.join(left, right)
        if op is BinOp.PRODUCT:
            return self._product(left, right)
        if op is BinOp.DOM_RESTRICT:
            return self._restrict(left, right, domain=True)
        if op is BinOp.RAN_RESTRICT:
            return self._restrict(right, left, domain=False)
        return wildcard(max(left.arity, right.arity))

    def _call_type(self, expr: FunCall, env: dict[str, RelType]) -> RelType:
        if expr.name in self._info.funs:
            return self.decl_type_products(self._info.funs[expr.name].result)
        # `name[a, b]` box-join sugar: b.(a.name) — fold joins on the left.
        result = self._name_type(NameExpr(name=expr.name, pos=expr.pos), env)
        for arg in expr.args:
            arg_type = self.type_of(arg, env)
            if arg_type.is_int or result.is_int:
                return wildcard(1)
            result = self.join(arg_type, result)
        return result

    def _comprehension_type(
        self, expr: Comprehension, env: dict[str, RelType]
    ) -> RelType:
        inner = dict(env)
        result: RelType | None = None
        for decl in expr.decls:
            bound = self.type_of(decl.bound, inner)
            if bound.arity != 1:
                bound = wildcard(1)
            for name in decl.names:
                inner[name] = bound
                result = bound if result is None else self._product(result, bound)
        return result if result is not None else wildcard(1)

    def _widened(self, expr: Expr, env: dict[str, RelType]) -> RelType:
        """Fallback: trust the resolver's arity, know nothing about columns."""
        from repro.alloy.errors import AlloyError
        from repro.alloy.resolver import arity_of

        try:
            arity = arity_of(
                self._info, expr, {name: t.arity for name, t in env.items()}
            )
        except (AlloyError, RecursionError):
            return wildcard(1)
        if arity == INT_ARITY:
            return INT_TYPE
        return wildcard(arity)

    # -- type algebra ---------------------------------------------------------

    def _capped(self, rel: RelType) -> RelType:
        if len(rel.products) > _MAX_PRODUCTS:
            return wildcard(rel.arity)
        return rel

    def _union(self, left: RelType, right: RelType) -> RelType:
        return self._capped(
            RelType(
                arity=left.arity or right.arity,
                products=left.products | right.products,
            )
        )

    def intersect(self, left: RelType, right: RelType) -> RelType:
        """Column-wise meet of two bounding types; empty iff provably dead."""
        met: set[tuple[str, ...]] = set()
        for a in left.products:
            for b in right.products:
                if len(a) != len(b):
                    continue
                columns = [self.meet(x, y) for x, y in zip(a, b)]
                if all(column is not None for column in columns):
                    met.add(tuple(columns))  # type: ignore[arg-type]
        return self._capped(RelType(arity=left.arity, products=frozenset(met)))

    def join(self, left: RelType, right: RelType) -> RelType:
        """Relational join on bounding types; empty iff provably dead."""
        arity = left.arity + right.arity - 2
        joined: set[tuple[str, ...]] = set()
        for a in left.products:
            for b in right.products:
                if self.overlaps(a[-1], b[0]):
                    joined.add(a[:-1] + b[1:])
        return self._capped(RelType(arity=arity, products=frozenset(joined)))

    def _product(self, left: RelType, right: RelType) -> RelType:
        products = frozenset(
            a + b for a in left.products for b in right.products
        )
        return self._capped(
            RelType(arity=left.arity + right.arity, products=products)
        )

    def _restrict(
        self, unary: RelType, rel: RelType, *, domain: bool
    ) -> RelType:
        """``s <: r`` (domain) or ``r :> s`` (range)."""
        column = 0 if domain else rel.arity - 1
        kept: set[tuple[str, ...]] = set()
        for s in unary.products:
            for t in rel.products:
                met = self.meet(s[0], t[column])
                if met is None:
                    continue
                refined = list(t)
                refined[column] = met
                kept.add(tuple(refined))
        return self._capped(RelType(arity=rel.arity, products=frozenset(kept)))


def inferencer_for(info: ModuleInfo) -> TypeInferencer:
    """The inferencer for one resolved module, memoized on the info object
    (its lattice caches are pure functions of the signature hierarchy)."""
    cached = getattr(info, "_type_inferencer", None)
    if cached is None:
        cached = TypeInferencer(info)
        info._type_inferencer = cached
    return cached
