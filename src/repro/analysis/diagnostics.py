"""Diagnostics: what the lint engine reports, and the rule registry.

Every finding is a :class:`Diagnostic` — a stable rule code, a severity, a
message, and the source position of the offending node — mirroring the
shape of compiler diagnostics so the CLI, the CI corpus gate, and the LLM
feedback renderer all consume the same records.

Rules live in a registry keyed by stable code (``A201`` …) *and* by a
kebab-case name (``disjoint-join``).  Codes are append-only: a rule may be
retired but its code is never reused, so historical traces and error
taxonomies stay interpretable.

Severity is reporting policy (what the CLI and corpus gate escalate);
pruning eligibility is a *separate*, stricter contract carried by
:attr:`Rule.prunes`.  A rule may only prune when its finding proves the
candidate is an infeasible specification — one the search gains nothing
by solving.  Dead-construct and tautology findings (A2xx/A3xx) do not
qualify: a repair can contain a dead join or a vacuous quantifier in one
paragraph and still meet every command's expectation, so vetoing on them
can discard the very candidate the unpruned search would select.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.alloy.errors import AlloyError, SourcePos


class LintError(AlloyError):
    """Raised when a caller asks for lint findings to be fatal.

    Carries the diagnostics so programmatic callers (CI, the corpus
    validator) can render them; :func:`repro.runtime.errors.classify_exception`
    maps this class to the stable ``spec.lint`` error code.
    """

    def __init__(
        self,
        message: str,
        diagnostics: list["Diagnostic"] | None = None,
        *,
        pos: SourcePos | None = None,
    ) -> None:
        diagnostics = diagnostics or []
        super().__init__(
            message, diagnostics[0].pos if diagnostics else pos
        )
        self.diagnostics = diagnostics


class Severity(enum.IntEnum):
    """Ordered so that ``severity >= threshold`` comparisons read naturally."""

    INFO = 1
    WARNING = 2
    ERROR = 3

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r} (expected info, warning, or error)"
            ) from None


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    code: str
    """Stable identifier, e.g. ``A201``; append-only, never reused."""
    name: str
    """Kebab-case name, e.g. ``disjoint-join``."""
    severity: Severity
    description: str
    prunes: bool = False
    """Whether a candidate *introducing* this finding may be vetoed before
    translation/solving.  The contract is semantic, not stylistic: the
    finding must witness infeasibility of the candidate as a whole (a
    fact set with no instances, a relation that can never hold a tuple),
    so the veto cannot change which candidate a search selects — the
    invariant the ``--no-static-prune`` ablation's byte-identical
    matrices depend on.  Style and dead-code findings stay reportable
    but never prune."""


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding with its source location."""

    rule: Rule = field(compare=False)
    message: str = ""
    pos: SourcePos = field(default=SourcePos(0, 0), compare=False)
    context: str = ""
    """The enclosing paragraph, e.g. ``fact Marriage`` or ``pred lookup``."""

    @property
    def code(self) -> str:
        return self.rule.code

    @property
    def severity(self) -> Severity:
        return self.rule.severity

    def key(self) -> tuple[str, str, str]:
        """Position-independent identity, used to diff candidate findings
        against a baseline (mutations shift positions, not meanings)."""
        return (self.rule.code, self.context, self.message)

    def render(self) -> str:
        return (
            f"{self.rule.code} {self.severity.name.lower():7s} "
            f"{self.pos.line}:{self.pos.column}  {self.message}"
            + (f"  [{self.context}]" if self.context else "")
        )


_RULES: dict[str, Rule] = {}


def register_rule(
    code: str,
    name: str,
    severity: Severity,
    description: str,
    *,
    prunes: bool = False,
) -> Rule:
    """Register one rule; duplicate codes or names are a programming error."""
    if code in _RULES:
        raise ValueError(f"rule code {code!r} already registered")
    if any(rule.name == name for rule in _RULES.values()):
        raise ValueError(f"rule name {name!r} already registered")
    rule = Rule(
        code=code,
        name=name,
        severity=severity,
        description=description,
        prunes=prunes,
    )
    _RULES[code] = rule
    return rule


def all_rules() -> list[Rule]:
    """Every registered rule in registration (= code) order."""
    return list(_RULES.values())


def rule_by_name(name: str) -> Rule:
    """Look a rule up by code or kebab-case name."""
    if name in _RULES:
        return _RULES[name]
    for rule in _RULES.values():
        if rule.name == name:
            return rule
    raise KeyError(f"unknown lint rule {name!r}")


# -- the built-in rule set ----------------------------------------------------
# Codes are grouped by family: A2xx dead semantics, A3xx suspicious shapes,
# A4xx hygiene.
#
# A2xx/A3xx findings flag constructs that are dead or degenerate *locally*,
# which is not proof the candidate fails the oracle — a passing repair can
# carry a vacuous quantifier in an unrelated paragraph (observed on the
# ARepair benchmark: pruning on A203 changed which fix was selected).  They
# therefore report but never prune; only the A5xx infeasibility family
# meets the `Rule.prunes` contract.

DISJOINT_JOIN = register_rule(
    "A201",
    "disjoint-join",
    Severity.ERROR,
    "a join whose column types never overlap: the expression is always empty",
)
EMPTY_INTERSECTION = register_rule(
    "A202",
    "empty-intersection",
    Severity.ERROR,
    "an intersection of disjoint types: the expression is always empty",
)
VACUOUS_QUANTIFIER = register_rule(
    "A203",
    "vacuous-quantifier",
    Severity.ERROR,
    "a quantifier or comprehension over a statically empty domain",
)
CONTRADICTORY_MULT = register_rule(
    "A204",
    "contradictory-mult",
    Severity.ERROR,
    "a multiplicity constraint that a statically empty operand can never "
    "satisfy (e.g. `some` over an always-empty expression)",
)
TAUTOLOGY = register_rule(
    "A301",
    "tautology",
    Severity.WARNING,
    "a formula that is true in every instance (e.g. `e = e`, `no none`)",
)
CONTRADICTION = register_rule(
    "A302",
    "contradiction",
    Severity.WARNING,
    "a formula that is false in every instance (e.g. `e != e`)",
)
SHADOWED_BINDING = register_rule(
    "A303",
    "shadowed-binding",
    Severity.WARNING,
    "a binder that shadows an outer binder, signature, or field",
)
UNUSED_SIG = register_rule(
    "A401",
    "unused-sig",
    Severity.INFO,
    "a signature never referenced by any field, formula, or command",
)
UNUSED_FIELD = register_rule(
    "A402",
    "unused-field",
    Severity.INFO,
    "a field never referenced by any formula",
)
UNUSED_PRED = register_rule(
    "A403",
    "unused-pred",
    Severity.INFO,
    "a predicate never called and never targeted by a command",
)
UNUSED_FUN = register_rule(
    "A404",
    "unused-fun",
    Severity.INFO,
    "a function never applied in any formula",
)

# A5xx: findings from the abstract cardinality interpretation
# (:mod:`repro.analysis.cardinality`) — interval bounds on tuple counts
# that hold in every instance at every scope.

STATICALLY_UNSAT_FACT = register_rule(
    "A501",
    "statically-unsat-fact",
    Severity.ERROR,
    "a fact whose body is unsatisfiable under any scope: the whole "
    "specification has no instances",
    prunes=True,
)
STATICALLY_VALID_ASSERT = register_rule(
    "A502",
    "statically-valid-assert-body",
    Severity.WARNING,
    "an assertion whose body holds in every instance at every scope: the "
    "check passes vacuously and verifies nothing",
    # Assertions are oracle paragraphs the repair tools never mutate, so
    # this finding is reported but never grounds for pruning a candidate.
)
EMPTY_DOMAIN_DECL = register_rule(
    "A503",
    "empty-domain-decl",
    Severity.ERROR,
    "a field or parameter declared over a statically empty domain: the "
    "relation can never hold a tuple",
    prunes=True,
)
INFEASIBLE_CARD_COMPARE = register_rule(
    "A504",
    "infeasible-cardinality-compare",
    Severity.ERROR,
    "a cardinality comparison the interval bounds refute in every "
    "instance (e.g. `#e < 0`, `#one-sig = 0`)",
    prunes=True,
)
