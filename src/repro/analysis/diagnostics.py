"""Diagnostics: what the lint engine reports, and the rule registry.

Every finding is a :class:`Diagnostic` — a stable rule code, a severity, a
message, and the source position of the offending node — mirroring the
shape of compiler diagnostics so the CLI, the CI corpus gate, and the LLM
feedback renderer all consume the same records.

Rules live in a registry keyed by stable code (``A201`` …) *and* by a
kebab-case name (``disjoint-join``).  Codes are append-only: a rule may be
retired but its code is never reused, so historical traces and error
taxonomies stay interpretable.

Severity doubles as policy:

- ``ERROR`` — the construct is semantically dead (an always-empty join, a
  quantifier over a provably empty domain).  Candidate pruning vetoes
  mutants that *introduce* one of these.
- ``WARNING`` — almost certainly unintended (tautological comparison,
  shadowed binding); prunable when introduced by a mutation.
- ``INFO`` — hygiene findings (unused declarations); reported, never
  grounds for pruning a repair candidate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.alloy.errors import AlloyError, SourcePos


class LintError(AlloyError):
    """Raised when a caller asks for lint findings to be fatal.

    Carries the diagnostics so programmatic callers (CI, the corpus
    validator) can render them; :func:`repro.runtime.errors.classify_exception`
    maps this class to the stable ``spec.lint`` error code.
    """

    def __init__(self, message: str, diagnostics: list["Diagnostic"]) -> None:
        super().__init__(message, diagnostics[0].pos if diagnostics else None)
        self.diagnostics = diagnostics


class Severity(enum.IntEnum):
    """Ordered so that ``severity >= threshold`` comparisons read naturally."""

    INFO = 1
    WARNING = 2
    ERROR = 3

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r} (expected info, warning, or error)"
            ) from None


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    code: str
    """Stable identifier, e.g. ``A201``; append-only, never reused."""
    name: str
    """Kebab-case name, e.g. ``disjoint-join``."""
    severity: Severity
    description: str
    prunes: bool = False
    """Whether a candidate *introducing* this finding is semantically dead
    and may be vetoed before translation/solving."""


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding with its source location."""

    rule: Rule = field(compare=False)
    message: str = ""
    pos: SourcePos = field(default=SourcePos(0, 0), compare=False)
    context: str = ""
    """The enclosing paragraph, e.g. ``fact Marriage`` or ``pred lookup``."""

    @property
    def code(self) -> str:
        return self.rule.code

    @property
    def severity(self) -> Severity:
        return self.rule.severity

    def key(self) -> tuple[str, str, str]:
        """Position-independent identity, used to diff candidate findings
        against a baseline (mutations shift positions, not meanings)."""
        return (self.rule.code, self.context, self.message)

    def render(self) -> str:
        return (
            f"{self.rule.code} {self.severity.name.lower():7s} "
            f"{self.pos.line}:{self.pos.column}  {self.message}"
            + (f"  [{self.context}]" if self.context else "")
        )


_RULES: dict[str, Rule] = {}


def register_rule(
    code: str,
    name: str,
    severity: Severity,
    description: str,
    *,
    prunes: bool = False,
) -> Rule:
    """Register one rule; duplicate codes or names are a programming error."""
    if code in _RULES:
        raise ValueError(f"rule code {code!r} already registered")
    if any(rule.name == name for rule in _RULES.values()):
        raise ValueError(f"rule name {name!r} already registered")
    rule = Rule(
        code=code,
        name=name,
        severity=severity,
        description=description,
        prunes=prunes,
    )
    _RULES[code] = rule
    return rule


def all_rules() -> list[Rule]:
    """Every registered rule in registration (= code) order."""
    return list(_RULES.values())


def rule_by_name(name: str) -> Rule:
    """Look a rule up by code or kebab-case name."""
    if name in _RULES:
        return _RULES[name]
    for rule in _RULES.values():
        if rule.name == name:
            return rule
    raise KeyError(f"unknown lint rule {name!r}")


# -- the built-in rule set ----------------------------------------------------
# Codes are grouped by family: A2xx dead semantics, A3xx suspicious shapes,
# A4xx hygiene.

DISJOINT_JOIN = register_rule(
    "A201",
    "disjoint-join",
    Severity.ERROR,
    "a join whose column types never overlap: the expression is always empty",
    prunes=True,
)
EMPTY_INTERSECTION = register_rule(
    "A202",
    "empty-intersection",
    Severity.ERROR,
    "an intersection of disjoint types: the expression is always empty",
    prunes=True,
)
VACUOUS_QUANTIFIER = register_rule(
    "A203",
    "vacuous-quantifier",
    Severity.ERROR,
    "a quantifier or comprehension over a statically empty domain",
    prunes=True,
)
CONTRADICTORY_MULT = register_rule(
    "A204",
    "contradictory-mult",
    Severity.ERROR,
    "a multiplicity constraint that a statically empty operand can never "
    "satisfy (e.g. `some` over an always-empty expression)",
    prunes=True,
)
TAUTOLOGY = register_rule(
    "A301",
    "tautology",
    Severity.WARNING,
    "a formula that is true in every instance (e.g. `e = e`, `no none`)",
    prunes=True,
)
CONTRADICTION = register_rule(
    "A302",
    "contradiction",
    Severity.WARNING,
    "a formula that is false in every instance (e.g. `e != e`)",
    prunes=True,
)
SHADOWED_BINDING = register_rule(
    "A303",
    "shadowed-binding",
    Severity.WARNING,
    "a binder that shadows an outer binder, signature, or field",
)
UNUSED_SIG = register_rule(
    "A401",
    "unused-sig",
    Severity.INFO,
    "a signature never referenced by any field, formula, or command",
)
UNUSED_FIELD = register_rule(
    "A402",
    "unused-field",
    Severity.INFO,
    "a field never referenced by any formula",
)
UNUSED_PRED = register_rule(
    "A403",
    "unused-pred",
    Severity.INFO,
    "a predicate never called and never targeted by a command",
)
UNUSED_FUN = register_rule(
    "A404",
    "unused-fun",
    Severity.INFO,
    "a function never applied in any formula",
)
