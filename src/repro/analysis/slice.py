"""Forward and backward slices over the dependency graph.

A *backward* slice from a node is everything it transitively depends on —
for a command, the exact set of paragraphs its verdict can read, which is
the context a retrieval-augmented repair prompt should quote.  A *forward*
slice is everything that transitively depends on the node — the impact set
of editing one paragraph: every command outside ``forward_slice(edited)``
is guaranteed to keep its verdict.
"""

from __future__ import annotations

from repro.analysis.depgraph import DepGraph, DepNode

_KIND_ORDER = {"sig": 0, "field": 1, "fact": 2, "pred": 3, "fun": 4, "assert": 5, "command": 6}


def _reachable(start: DepNode, step) -> frozenset[DepNode]:
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for neighbour in step(node):
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return frozenset(seen)


def backward_slice(graph: DepGraph, node: DepNode) -> frozenset[DepNode]:
    """``node`` plus everything it transitively depends on."""
    return _reachable(node, graph.dependencies)


def forward_slice(graph: DepGraph, node: DepNode) -> frozenset[DepNode]:
    """``node`` plus everything that transitively depends on it."""
    return _reachable(node, graph.dependents)


def slice_for(graph: DepGraph, name: str, *, direction: str = "backward") -> frozenset[DepNode]:
    """Slice from the first node matching ``name`` (kind order: sig first).

    Raises :class:`KeyError` when no node carries the name, so CLI callers
    can map it to a usage error.
    """
    matches = graph.find(name)
    if not matches:
        raise KeyError(f"no paragraph named {name!r} in the module")
    walker = backward_slice if direction == "backward" else forward_slice
    return walker(graph, matches[0])


def render_slice(nodes: frozenset[DepNode], *, root: DepNode | None = None) -> str:
    """One-line rendering: ``kind name`` entries sorted by kind then name,
    with the slice root (if given) excluded from the listing."""
    members = sorted(
        (n for n in nodes if n != root),
        key=lambda n: (_KIND_ORDER.get(n.kind, 99), n.name),
    )
    if not members:
        return "(nothing)"
    return ", ".join(f"{n.kind} {n.name}" for n in members)
