"""The spec lint engine: rule-driven diagnostics over a resolved module.

:func:`lint_module` walks every paragraph with a scope-aware environment of
binder types (from :mod:`repro.analysis.reltypes`) and applies the
registered rules, yielding :class:`~repro.analysis.diagnostics.Diagnostic`
records with source positions.  The walk is purely static — no translation,
no solving — which is what makes it cheap enough to run on every repair
candidate before the SAT pipeline sees it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.alloy.errors import AlloyError
from repro.alloy.nodes import (
    BinaryExpr,
    BinOp,
    Block,
    BoolBin,
    CardExpr,
    Compare,
    CmpOp,
    Comprehension,
    Decl,
    Expr,
    Formula,
    FunCall,
    ImpliesElse,
    Let,
    Module,
    Mult,
    MultTest,
    NameExpr,
    Node,
    Not,
    PredCall,
    Quant,
    Quantified,
    UnaryExpr,
)
from repro.alloy.pretty import print_expr
from repro.alloy.resolver import ModuleInfo, resolve_module
from repro.analysis.cardinality import (
    CardinalityAnalyzer,
    _interval_compare,
    cardinality_analyzer,
)
from repro.analysis.diagnostics import (
    CONTRADICTION,
    CONTRADICTORY_MULT,
    DISJOINT_JOIN,
    EMPTY_DOMAIN_DECL,
    EMPTY_INTERSECTION,
    INFEASIBLE_CARD_COMPARE,
    LintError,
    Diagnostic,
    Rule,
    SHADOWED_BINDING,
    Severity,
    STATICALLY_UNSAT_FACT,
    STATICALLY_VALID_ASSERT,
    TAUTOLOGY,
    UNUSED_FIELD,
    UNUSED_FUN,
    UNUSED_PRED,
    UNUSED_SIG,
    VACUOUS_QUANTIFIER,
)
from repro.analysis.reltypes import RelType, TypeInferencer, inferencer_for


def lint_module(
    module: Module,
    info: ModuleInfo | None = None,
    *,
    rules: set[str] | None = None,
) -> list[Diagnostic]:
    """Every lint finding for one module, in source order.

    ``info`` may be supplied when the caller already resolved the module
    (the repair pipeline always has); otherwise it is computed here.
    ``rules`` optionally restricts the run to a set of rule codes/names.
    """
    if info is None:
        info = resolve_module(module)
    linter = _Linter(module, info)
    findings = linter.run()
    if rules is not None:
        wanted = {r.lower() for r in rules}
        findings = [
            d
            for d in findings
            if d.rule.code.lower() in wanted or d.rule.name in wanted
        ]
    return findings


def lint_source(source: str, **kwargs) -> list[Diagnostic]:
    """Parse, resolve, and lint a specification text."""
    from repro.alloy.parser import parse_module

    return lint_module(parse_module(source), **kwargs)


def check_module(
    module: Module,
    info: ModuleInfo | None = None,
    *,
    fail_on: Severity = Severity.ERROR,
) -> list[Diagnostic]:
    """Lint and raise :class:`LintError` if any finding reaches ``fail_on``."""
    findings = lint_module(module, info)
    fatal = [d for d in findings if d.severity >= fail_on]
    if fatal:
        raise LintError(
            f"{len(fatal)} lint finding(s) at or above "
            f"{fail_on.name.lower()}: "
            + "; ".join(f"{d.code} {d.message}" for d in fatal[:3])
            + ("; ..." if len(fatal) > 3 else ""),
            fatal,
        )
    return findings


def render_diagnostics(diagnostics: list[Diagnostic]) -> str:
    """The CLI / feedback rendering: one line per finding."""
    if not diagnostics:
        return "no findings"
    return "\n".join(d.render() for d in diagnostics)


_PARAGRAPH_MEMO = threading.local()

_PARAGRAPH_MEMO_LIMIT = 4096
"""Cap on the per-thread paragraph lint memo (entries pin paragraph ASTs)."""


def _paragraph_memo() -> OrderedDict:
    memo = getattr(_PARAGRAPH_MEMO, "entries", None)
    if memo is None:
        memo = _PARAGRAPH_MEMO.entries = OrderedDict()
    return memo


class _Linter:
    """One lint pass over one module.

    Per-paragraph findings are memoized by paragraph *identity* together
    with the identities of every declaration that can influence typing (sig
    declarations and function result declarations).  Repair candidates are
    path-copied edits of a base module, so all but the edited paragraph are
    the same objects and lint a mutant at the cost of one paragraph.  The
    module-level hygiene rules (unused declarations) depend on the whole
    module and are recomputed every run from the cached per-paragraph
    used/called name sets.
    """

    def __init__(self, module: Module, info: ModuleInfo) -> None:
        self._module = module
        self._info = info
        self._types: TypeInferencer = inferencer_for(info)
        self._cards: CardinalityAnalyzer = cardinality_analyzer(info)
        self._findings: list[Diagnostic] = []
        self._context = ""
        self._used_names: set[str] = set()
        self._called: set[str] = set()
        # Identity context for the paragraph memo: typing reads sig
        # hierarchies/fields and fun result declarations, nothing else.
        self._type_ctx = tuple(
            [sig.decl for sig in info.sigs.values()]
            + [fun.result for fun in info.funs.values()]
        )

    def _paragraph_jobs(self):
        """Yield ``(paragraph, context, walk)`` for every cacheable unit."""
        info = self._info
        for fact in info.facts:

            def walk_fact(fact=fact):
                self._formula(fact.body, {})
                self._check_fact_truth(fact)

            yield fact, f"fact {fact.name or '<anonymous>'}", walk_fact
        for pred in info.preds.values():

            def walk_pred(pred=pred):
                env = self._param_env(pred.params)
                self._formula(pred.body, env)

            yield pred, f"pred {pred.name}", walk_pred
        for fun in info.funs.values():

            def walk_fun(fun=fun):
                env = self._param_env(fun.params)
                self._expr(fun.body, env)
                for node in fun.result.walk():
                    if isinstance(node, NameExpr):
                        self._used_names.add(node.name)

            yield fun, f"fun {fun.name}", walk_fun
        for assertion in info.asserts.values():

            def walk_assert(assertion=assertion):
                self._formula(assertion.body, {})
                self._check_assert_truth(assertion)

            yield assertion, f"assert {assertion.name}", walk_assert
        for command in info.commands:
            if command.block is not None:
                yield (
                    command,
                    f"{command.kind} <block>",
                    lambda command=command: self._formula(command.block, {}),
                )

    @staticmethod
    def _same_ctx(left: tuple, right: tuple) -> bool:
        return len(left) == len(right) and all(
            a is b for a, b in zip(left, right)
        )

    def run(self) -> list[Diagnostic]:
        info = self._info
        memo = _paragraph_memo()
        all_findings: list[Diagnostic] = []
        all_used: set[str] = set()
        all_called: set[str] = set()
        for paragraph, context, walk in self._paragraph_jobs():
            entry = memo.get(id(paragraph))
            if entry is not None and (
                entry[0] is paragraph and self._same_ctx(entry[1], self._type_ctx)
            ):
                memo.move_to_end(id(paragraph))
                _, _, findings, used, called = entry
            else:
                self._findings = []
                self._used_names = set()
                self._called = set()
                self._context = context
                walk()
                findings = tuple(self._findings)
                used = frozenset(self._used_names)
                called = frozenset(self._called)
                memo[id(paragraph)] = (
                    paragraph,
                    self._type_ctx,
                    findings,
                    used,
                    called,
                )
                if len(memo) > _PARAGRAPH_MEMO_LIMIT:
                    memo.popitem(last=False)
            all_findings.extend(findings)
            all_used.update(used)
            all_called.update(called)
        for command in info.commands:
            if command.target is not None:
                all_called.add(command.target)
        self._findings = all_findings
        self._used_names = all_used
        self._called = all_called
        self._context = "module"
        self._unused_decls()
        self._empty_field_domains()
        self._findings.sort(key=lambda d: (d.pos.line, d.pos.column, d.code))
        return self._findings

    # -- plumbing -------------------------------------------------------------

    def _report(self, rule: Rule, message: str, node: Node) -> None:
        self._findings.append(
            Diagnostic(
                rule=rule, message=message, pos=node.pos, context=self._context
            )
        )

    def _param_env(self, params: list[Decl]) -> dict[str, RelType]:
        env: dict[str, RelType] = {}
        for decl in params:
            self._expr(decl.bound, env)
            bound = self._type_of(decl.bound, env)
            if bound.empty:
                rendered = _safe_print(decl.bound) or "<expr>"
                names = ", ".join(decl.names)
                self._report(
                    EMPTY_DOMAIN_DECL,
                    f"parameter {names} is declared over '{rendered}', "
                    "which is statically empty",
                    decl,
                )
            for name in decl.names:
                env[name] = bound
        return env

    def _truth(self, formula: Formula) -> bool | None:
        """Scope-independent three-valued truth; failures stay undecided."""
        try:
            return self._cards.truth(formula)
        except (AlloyError, RecursionError):  # pragma: no cover - safety net
            return None

    def _check_fact_truth(self, fact) -> None:
        if self._truth(fact.body) is False:
            self._report(
                STATICALLY_UNSAT_FACT,
                f"fact '{fact.name or '<anonymous>'}' is unsatisfiable "
                "under any scope: the specification has no instances",
                fact,
            )

    def _check_assert_truth(self, assertion) -> None:
        if self._truth(assertion.body) is True:
            self._report(
                STATICALLY_VALID_ASSERT,
                f"assertion '{assertion.name}' holds in every instance at "
                "every scope: the check verifies nothing",
                assertion,
            )

    def _type_of(self, expr: Expr, env: dict[str, RelType]) -> RelType:
        try:
            return self._types.type_of(expr, env)
        except (AlloyError, RecursionError):  # pragma: no cover - safety net
            from repro.analysis.reltypes import wildcard

            return wildcard(1)

    # -- formula walk ---------------------------------------------------------

    def _formula(self, formula: Formula, env: dict[str, RelType]) -> None:
        if isinstance(formula, Compare):
            self._compare(formula, env)
            self._expr(formula.left, env)
            self._expr(formula.right, env)
        elif isinstance(formula, MultTest):
            self._mult_test(formula, env)
            self._expr(formula.operand, env)
        elif isinstance(formula, Not):
            self._formula(formula.operand, env)
        elif isinstance(formula, BoolBin):
            self._bool_bin(formula, env)
        elif isinstance(formula, ImpliesElse):
            self._formula(formula.cond, env)
            self._formula(formula.then, env)
            self._formula(formula.other, env)
        elif isinstance(formula, Quantified):
            self._quantified(formula, env)
        elif isinstance(formula, Let):
            self._let(formula, env)
        elif isinstance(formula, PredCall):
            self._called.add(formula.name)
            for arg in formula.args:
                self._expr(arg, env)
        elif isinstance(formula, Block):
            for inner in formula.formulas:
                self._formula(inner, env)

    def _compare(self, formula: Compare, env: dict[str, RelType]) -> None:
        left_text = _safe_print(formula.left)
        right_text = _safe_print(formula.right)
        if left_text is None or left_text != right_text:
            # Interval-refuted cardinality comparisons (`#e < 0`,
            # `#one-sig = 0`).  Self-compares are A301/A302 territory.
            self._check_card_compare(formula, env)
        if left_text is not None and left_text == right_text:
            if formula.op in (CmpOp.EQ, CmpOp.IN, CmpOp.LTE, CmpOp.GTE):
                self._report(
                    TAUTOLOGY,
                    f"'{left_text} {formula.op.value} {right_text}' "
                    "compares an expression with itself and always holds",
                    formula,
                )
            elif formula.op in (CmpOp.NEQ, CmpOp.NOT_IN, CmpOp.LT, CmpOp.GT):
                self._report(
                    CONTRADICTION,
                    f"'{left_text} {formula.op.value} {right_text}' "
                    "compares an expression with itself and never holds",
                    formula,
                )

    def _check_card_compare(
        self, formula: Compare, env: dict[str, RelType]
    ) -> None:
        from repro.analysis.cardinality import TOP

        # Binder names widen to TOP so a binder shadowing a signature never
        # borrows the signature's bounds.
        ienv = {name: TOP for name in env}
        try:
            left = self._cards.int_interval(formula.left, ienv)
            right = self._cards.int_interval(formula.right, ienv)
            if left is None or right is None:
                return
            verdict = _interval_compare(formula.op, left, right)
        except (AlloyError, RecursionError):  # pragma: no cover - safety net
            return
        if verdict is False:
            left_text = _safe_print(formula.left) or "<expr>"
            right_text = _safe_print(formula.right) or "<expr>"
            self._report(
                INFEASIBLE_CARD_COMPARE,
                f"'{left_text} {formula.op.value} {right_text}' can never "
                f"hold: the bounds are {left.describe()} vs "
                f"{right.describe()}",
                formula,
            )

    def _mult_test(self, formula: MultTest, env: dict[str, RelType]) -> None:
        operand = self._type_of(formula.operand, env)
        if not operand.empty:
            return
        rendered = _safe_print(formula.operand) or "<expr>"
        if formula.mult in (Mult.SOME, Mult.ONE):
            self._report(
                CONTRADICTORY_MULT,
                f"'{formula.mult.value} {rendered}' can never hold: "
                "the operand is statically empty",
                formula,
            )
        elif formula.mult in (Mult.NO, Mult.LONE):
            self._report(
                TAUTOLOGY,
                f"'{formula.mult.value} {rendered}' always holds: "
                "the operand is statically empty",
                formula,
            )

    def _bool_bin(self, formula: BoolBin, env: dict[str, RelType]) -> None:
        left_text = _safe_print_formula(formula.left)
        right_text = _safe_print_formula(formula.right)
        if left_text is not None and left_text == right_text:
            self._report(
                TAUTOLOGY,
                f"both sides of '{formula.op.value}' are the identical "
                f"formula '{_clip(left_text)}'",
                formula,
            )
        self._formula(formula.left, env)
        self._formula(formula.right, env)

    def _quantified(self, formula: Quantified, env: dict[str, RelType]) -> None:
        inner = dict(env)
        for decl in formula.decls:
            self._check_binder_domain(
                decl, inner, quant=formula.quant, node=formula
            )
            bound = self._type_of(decl.bound, inner)
            for name in decl.names:
                self._check_shadowing(name, inner, decl)
                inner[name] = bound
            self._expr(decl.bound, env)
        self._formula(formula.body, inner)

    def _let(self, formula: Let, env: dict[str, RelType]) -> None:
        self._expr(formula.value, env)
        self._check_shadowing(formula.name, env, formula)
        inner = dict(env)
        inner[formula.name] = self._type_of(formula.value, env)
        self._formula(formula.body, inner)

    def _check_binder_domain(
        self,
        decl: Decl,
        env: dict[str, RelType],
        *,
        quant: Quant | None,
        node: Node,
    ) -> None:
        bound = self._type_of(decl.bound, env)
        if not bound.empty:
            return
        rendered = _safe_print(decl.bound) or "<expr>"
        names = ", ".join(decl.names)
        what = f"'{quant.value}'" if quant is not None else "comprehension"
        self._report(
            VACUOUS_QUANTIFIER,
            f"{what} binds {names} over '{rendered}', which is statically "
            "empty — the body can never execute",
            node,
        )

    def _check_shadowing(
        self, name: str, env: dict[str, RelType], node: Node
    ) -> None:
        if name in env:
            self._report(
                SHADOWED_BINDING,
                f"binder '{name}' shadows an enclosing binder",
                node,
            )
        elif name in self._info.sigs or name in self._info.fields:
            kind = "signature" if name in self._info.sigs else "field"
            self._report(
                SHADOWED_BINDING,
                f"binder '{name}' shadows the {kind} of the same name",
                node,
            )

    # -- expression walk ------------------------------------------------------

    def _expr(self, expr: Expr, env: dict[str, RelType]) -> None:
        if isinstance(expr, NameExpr):
            self._used_names.add(expr.name)
            return
        if isinstance(expr, BinaryExpr):
            self._binary(expr, env)
            return
        if isinstance(expr, UnaryExpr):
            self._expr(expr.operand, env)
            return
        if isinstance(expr, CardExpr):
            self._expr(expr.operand, env)
            return
        if isinstance(expr, FunCall):
            self._called.add(expr.name)
            self._used_names.add(expr.name)
            for arg in expr.args:
                self._expr(arg, env)
            return
        if isinstance(expr, Comprehension):
            inner = dict(env)
            for decl in expr.decls:
                self._check_binder_domain(decl, inner, quant=None, node=expr)
                bound = self._type_of(decl.bound, inner)
                for name in decl.names:
                    self._check_shadowing(name, inner, decl)
                    inner[name] = bound
                self._expr(decl.bound, env)
            self._formula(expr.body, inner)
            return

    def _binary(self, expr: BinaryExpr, env: dict[str, RelType]) -> None:
        left = self._type_of(expr.left, env)
        right = self._type_of(expr.right, env)
        if not left.is_int and not right.is_int:
            if expr.op is BinOp.JOIN and not left.empty and not right.empty:
                joined = self._types.join(left, right)
                if joined.empty:
                    self._report(
                        DISJOINT_JOIN,
                        f"join of {left.describe()} with {right.describe()} "
                        "is always empty: no columns overlap",
                        expr,
                    )
            elif (
                expr.op is BinOp.INTERSECT
                and not left.empty
                and not right.empty
            ):
                met = self._types.intersect(left, right)
                if met.empty:
                    self._report(
                        EMPTY_INTERSECTION,
                        f"intersection of {left.describe()} with "
                        f"{right.describe()} is always empty",
                        expr,
                    )
        self._expr(expr.left, env)
        self._expr(expr.right, env)

    # -- module-level hygiene -------------------------------------------------

    def _unused_decls(self) -> None:
        info = self._info
        used = set(self._used_names)
        called = set(self._called)
        # Structural uses: hierarchy parents and field column types keep a
        # signature alive even when no formula names it.
        structurally_used: set[str] = set()
        for sig in info.sigs.values():
            if sig.parent is not None:
                structurally_used.add(sig.parent)
        for field_info in info.fields.values():
            structurally_used.update(field_info.columns)
        for scope_holder in info.commands:
            for scope in scope_holder.sig_scopes:
                structurally_used.add(scope.sig)

        for sig in info.sigs.values():
            if sig.name in used or sig.name in structurally_used:
                continue
            if sig.children:
                continue  # parents of used children are structural
            self._report(
                UNUSED_SIG,
                f"signature '{sig.name}' is never referenced",
                sig.decl,
            )
        for field_info in info.fields.values():
            if field_info.name not in used:
                self._report(
                    UNUSED_FIELD,
                    f"field '{field_info.name}' is never referenced",
                    field_info.decl,
                )
        for pred in info.preds.values():
            if pred.name not in called:
                self._report(
                    UNUSED_PRED,
                    f"predicate '{pred.name}' is never called or run",
                    pred,
                )
        for fun in info.funs.values():
            if fun.name not in called and fun.name not in used:
                self._report(
                    UNUSED_FUN,
                    f"function '{fun.name}' is never applied",
                    fun,
                )

    def _empty_field_domains(self) -> None:
        """A503 for fields declared over statically empty column types."""
        for field_info in self._info.fields.values():
            dead = [
                column
                for column in field_info.columns
                if column in self._info.sigs
                and self._types.sig_type(column).empty
            ]
            if dead:
                self._report(
                    EMPTY_DOMAIN_DECL,
                    f"field '{field_info.name}' spans statically empty "
                    f"signature(s) {', '.join(sorted(set(dead)))}: it can "
                    "never hold a tuple",
                    field_info.decl,
                )


def _safe_print(expr: Expr) -> str | None:
    try:
        return print_expr(expr)
    except Exception:  # pragma: no cover - printer is total in practice
        return None


def _safe_print_formula(formula: Formula) -> str | None:
    from repro.alloy.pretty import print_formula

    try:
        return print_formula(formula)
    except Exception:  # pragma: no cover
        return None


def _clip(text: str, limit: int = 60) -> str:
    return text if len(text) <= limit else text[: limit - 3] + "..."
