"""Whole-spec dependency graph over a resolved module.

The graph has one node per declared unit — signature, field, predicate,
function, fact, assertion, and command — and a def-use edge ``A → B``
whenever understanding ``A`` requires ``B``: a predicate names a field, a
signature extends a parent, a command targets an assertion.  Commands also
depend on every fact, because Alloy conjoins all facts into every
command's constraint set.

Two consumers drive the design:

- **Slicing** (:mod:`repro.analysis.slice`): the backward slice of a
  command is exactly the set of paragraphs its verdict can depend on —
  the static collector for retrieval-augmented repair.
- **Recursion detection**: strongly-connected components with more than
  one member (or a self-loop) are the mutually recursive predicate/function
  groups that bounded unrolling has to treat specially.

Name references are collected over-approximately: a binder that shadows a
global of the same name still records an edge to the global.  That keeps
the graph a sound over-approximation of real dependence, which is the
property slicing needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alloy.nodes import FunCall, Module, NameExpr, Node, PredCall
from repro.alloy.resolver import ModuleInfo, resolve_module

_KIND_ORDER = ("sig", "field", "fact", "pred", "fun", "assert", "command")


@dataclass(frozen=True, order=True)
class DepNode:
    """One unit of the specification, addressable by (kind, name)."""

    kind: str
    name: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.kind} {self.name}"


@dataclass
class DepGraph:
    """The dependency graph plus its derived structure."""

    nodes: tuple[DepNode, ...]
    edges: dict[DepNode, frozenset[DepNode]]
    paragraphs: dict[DepNode, Node] = field(default_factory=dict)
    """The declaring AST node for each graph node (command nodes map to the
    :class:`~repro.alloy.nodes.Command`, field nodes to the field decl)."""

    def __post_init__(self) -> None:
        reverse: dict[DepNode, set[DepNode]] = {n: set() for n in self.nodes}
        for source, targets in self.edges.items():
            for target in targets:
                reverse.setdefault(target, set()).add(source)
        self._reverse = {n: frozenset(deps) for n, deps in reverse.items()}

    def dependencies(self, node: DepNode) -> frozenset[DepNode]:
        """Direct def-use successors: what ``node`` needs."""
        return self.edges.get(node, frozenset())

    def dependents(self, node: DepNode) -> frozenset[DepNode]:
        """Direct predecessors: what needs ``node``."""
        return self._reverse.get(node, frozenset())

    def node(self, kind: str, name: str) -> DepNode:
        candidate = DepNode(kind, name)
        if candidate not in self.edges:
            raise KeyError(f"no {kind} named {name!r} in the graph")
        return candidate

    def find(self, name: str) -> list[DepNode]:
        """Every node whose name matches, in kind order (``sig`` first)."""
        hits = [n for n in self.nodes if n.name == name]
        return sorted(hits, key=lambda n: _KIND_ORDER.index(n.kind))

    def sccs(self) -> list[tuple[DepNode, ...]]:
        """Strongly-connected components in reverse-topological order
        (iterative Tarjan: dependencies come before their dependents)."""
        index: dict[DepNode, int] = {}
        lowlink: dict[DepNode, int] = {}
        on_stack: set[DepNode] = set()
        stack: list[DepNode] = []
        counter = 0
        result: list[tuple[DepNode, ...]] = []

        for root in self.nodes:
            if root in index:
                continue
            work = [(root, iter(sorted(self.dependencies(root))))]
            index[root] = lowlink[root] = counter = counter + 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, children = work[-1]
                advanced = False
                for child in children:
                    if child not in index:
                        index[child] = lowlink[child] = counter = counter + 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append((child, iter(sorted(self.dependencies(child)))))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component: list[DepNode] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member is node:
                            break
                    result.append(tuple(sorted(component)))
        return result

    def recursion_groups(self) -> list[tuple[DepNode, ...]]:
        """SCCs that actually recurse: more than one member, or a
        self-loop (a predicate that calls itself)."""
        groups = []
        for component in self.sccs():
            if len(component) > 1:
                groups.append(component)
            elif component[0] in self.dependencies(component[0]):
                groups.append(component)
        return groups

    def stats(self) -> dict[str, int]:
        """Node counts per kind plus edge totals, for rendering."""
        counts = {kind: 0 for kind in _KIND_ORDER}
        for node in self.nodes:
            counts[node.kind] += 1
        counts["edges"] = sum(len(targets) for targets in self.edges.values())
        counts["recursion_groups"] = len(self.recursion_groups())
        return counts


def _referenced_names(node: Node) -> tuple[set[str], set[str]]:
    """(names used in expressions, names called as preds/funs) under ``node``."""
    used: set[str] = set()
    called: set[str] = set()
    for child in node.walk():
        if isinstance(child, NameExpr):
            used.add(child.name)
        elif isinstance(child, (PredCall, FunCall)):
            called.add(child.name)
    return used, called


def build_depgraph(module: Module, info: ModuleInfo | None = None) -> DepGraph:
    """Construct the def-use graph for one resolved module."""
    if info is None:
        info = resolve_module(module)

    nodes: list[DepNode] = []
    paragraphs: dict[DepNode, Node] = {}
    by_name: dict[str, DepNode] = {}

    def add(kind: str, name: str, decl: Node) -> DepNode:
        node = DepNode(kind, name)
        nodes.append(node)
        paragraphs[node] = decl
        return node

    for sig in info.sigs.values():
        by_name[sig.name] = add("sig", sig.name, sig.decl)
    for field_info in info.fields.values():
        node = add("field", field_info.name, field_info.decl)
        by_name.setdefault(field_info.name, node)
    fact_nodes: list[tuple[DepNode, Node]] = []
    for position, fact in enumerate(info.facts):
        label = fact.name or f"<anonymous #{position}>"
        node = add("fact", label, fact)
        fact_nodes.append((node, fact))
    for pred in info.preds.values():
        by_name.setdefault(pred.name, add("pred", pred.name, pred))
    for fun in info.funs.values():
        by_name.setdefault(fun.name, add("fun", fun.name, fun))
    assert_nodes: dict[str, DepNode] = {}
    for assertion in info.asserts.values():
        assert_nodes[assertion.name] = add("assert", assertion.name, assertion)
    command_nodes: list[tuple[DepNode, Node]] = []
    for position, command in enumerate(info.commands):
        label = command.label or command.target or f"<block #{position}>"
        node = add("command", f"{command.kind} {label}", command)
        command_nodes.append((node, command))

    edges: dict[DepNode, set[DepNode]] = {node: set() for node in nodes}

    def link_names(source: DepNode, ast: Node) -> None:
        used, called = _referenced_names(ast)
        for name in used | called:
            target = by_name.get(name)
            if target is None:
                continue
            if target == source and name not in called:
                # A sig's appended fact naming its own sig is not a
                # dependency — but a predicate *calling* itself is the
                # self-loop recursion detection looks for.
                continue
            edges[source].add(target)

    for sig in info.sigs.values():
        source = by_name[sig.name]
        if sig.parent is not None and sig.parent in by_name:
            edges[source].add(by_name[sig.parent])
        if sig.decl.appended is not None:
            link_names(source, sig.decl.appended)
    for field_info in info.fields.values():
        source = DepNode("field", field_info.name)
        edges[source].add(by_name[field_info.owner])
        link_names(source, field_info.decl)
        for column in field_info.columns:
            target = by_name.get(column)
            if target is not None:
                edges[source].add(target)
    for node, fact in fact_nodes:
        link_names(node, fact)
    for pred in info.preds.values():
        link_names(by_name[pred.name], pred)
    for fun in info.funs.values():
        link_names(by_name[fun.name], fun)
    for assertion in info.asserts.values():
        link_names(assert_nodes[assertion.name], assertion)
    for node, command in command_nodes:
        if command.target is not None:
            target = assert_nodes.get(command.target) or by_name.get(command.target)
            if target is not None:
                edges[node].add(target)
        if command.block is not None:
            link_names(node, command.block)
        for scope in command.sig_scopes:
            target = by_name.get(scope.sig)
            if target is not None:
                edges[node].add(target)
        # Alloy conjoins every fact into every command, so a command's
        # verdict depends on each fact's cone whether or not it names it.
        for fact_node, _ in fact_nodes:
            edges[node].add(fact_node)

    return DepGraph(
        nodes=tuple(nodes),
        edges={node: frozenset(targets) for node, targets in edges.items()},
        paragraphs=paragraphs,
    )
