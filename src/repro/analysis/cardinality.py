"""Abstract cardinality interpretation over relational types.

For every relational expression we track an interval ``[lo, hi]`` bounding
its tuple count in *every* instance at *every* scope — only facts that
scopes cannot override may contribute: signature multiplicities (``one sig``
always has exactly one atom), field multiplicities, statically-empty types
from :mod:`repro.analysis.reltypes`, and the algebra of union / product /
join / closure over intervals.

From intervals we get a three-valued truth analysis for formulas:
``True`` means *valid* (holds in every instance at every scope), ``False``
means *unsatisfiable*, ``None`` means the analysis cannot decide.  That is
exactly what candidate pruning needs: a repair candidate whose fact became
statically unsatisfiable, or whose cardinality comparison can never hold,
is dead without ever reaching the solver.

The analysis never inlines predicate calls: lint memoizes findings per
paragraph keyed on declaration identity, and inlining would make a fact's
findings depend on predicate *bodies* the memo key cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloy.nodes import (
    ArrowType,
    BinaryExpr,
    BinOp,
    Block,
    BoolBin,
    CardExpr,
    CmpOp,
    Compare,
    Comprehension,
    Decl,
    DeclType,
    Expr,
    Formula,
    FunCall,
    IdenExpr,
    ImpliesElse,
    IntLit,
    Let,
    LogicOp,
    Mult,
    MultTest,
    NameExpr,
    NoneExpr,
    Not,
    PredCall,
    Quant,
    Quantified,
    UnaryExpr,
    UnaryType,
    UnivExpr,
    UnOp,
)
from repro.alloy.resolver import ModuleInfo
from repro.analysis.reltypes import TypeInferencer, inferencer_for


@dataclass(frozen=True)
class Interval:
    """Tuple-count bounds; ``hi is None`` means unbounded above."""

    lo: int = 0
    hi: int | None = None

    def __post_init__(self) -> None:
        if self.hi is not None and self.hi < self.lo:
            object.__setattr__(self, "hi", self.lo)

    @property
    def is_empty(self) -> bool:
        """Provably zero tuples in every instance."""
        return self.hi == 0

    @property
    def is_nonempty(self) -> bool:
        """Provably at least one tuple in every instance."""
        return self.lo >= 1

    def describe(self) -> str:
        upper = "*" if self.hi is None else str(self.hi)
        return f"[{self.lo}..{upper}]"


TOP = Interval(0, None)
EMPTY = Interval(0, 0)
SCALAR = Interval(1, 1)


def _add(a: int | None, b: int | None) -> int | None:
    if a is None or b is None:
        return None
    return a + b


def _mul(a: int | None, b: int | None) -> int | None:
    if a == 0 or b == 0:
        return 0
    if a is None or b is None:
        return None
    return a * b


def _min_hi(a: int | None, b: int | None) -> int | None:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


_MULT_INTERVALS = {
    Mult.ONE: Interval(1, 1),
    Mult.LONE: Interval(0, 1),
    Mult.SOME: Interval(1, None),
    Mult.SET: TOP,
    Mult.NO: EMPTY,
}

_RECURSION_LIMIT = 64


class CardinalityAnalyzer:
    """Interval interpretation for one resolved module."""

    def __init__(self, info: ModuleInfo) -> None:
        self._info = info
        self._types: TypeInferencer = inferencer_for(info)
        self._sig_memo: dict[str, Interval] = {}

    # -- signatures -----------------------------------------------------------

    def sig_interval(self, name: str, _active: frozenset[str] = frozenset()) -> Interval:
        """Bounds on a signature's atom count, valid at any scope."""
        cached = self._sig_memo.get(name)
        if cached is not None:
            return cached
        sig = self._info.sigs.get(name)
        if sig is None or name in _active:
            return TOP
        own = _MULT_INTERVALS.get(sig.mult, TOP)
        if sig.abstract:
            # An abstract sig is exactly the disjoint union of its children.
            if not sig.children:
                result = EMPTY
            else:
                lo, hi = 0, 0
                for child in sig.children:
                    inner = self.sig_interval(child, _active | {name})
                    lo, hi = lo + inner.lo, _add(hi, inner.hi)
                result = Interval(max(lo, own.lo), _min_hi(hi, own.hi))
        else:
            result = own
        self._sig_memo[name] = result
        return result

    def _decl_type_interval(self, decl_type: DeclType) -> Interval:
        """Bounds from a field/function result declaration's multiplicity."""
        if isinstance(decl_type, UnaryType):
            rel = self._type_of(decl_type.expr)
            if rel is not None and rel.arity >= 1 and rel.empty:
                return EMPTY
            return _MULT_INTERVALS.get(decl_type.mult, TOP)
        if isinstance(decl_type, ArrowType):
            left = self._decl_type_interval(decl_type.left)
            right = self._decl_type_interval(decl_type.right)
            if left.is_empty or right.is_empty:
                return EMPTY
            return TOP
        return TOP

    def _field_interval(self, name: str) -> Interval:
        field = self._info.fields.get(name)
        if field is None:
            return TOP
        owner = self.sig_interval(field.owner)
        if owner.is_empty:
            return EMPTY
        for column in field.columns:
            if self.sig_interval(column).is_empty and column in self._info.sigs:
                return EMPTY
        decl_type = field.decl.type
        if isinstance(decl_type, UnaryType):
            # `f: m S` constrains each owner atom to m tuples; totals are the
            # owner count scaled by the per-atom bounds.
            per_atom = _MULT_INTERVALS.get(decl_type.mult, TOP)
            return Interval(
                per_atom.lo * owner.lo, _mul(per_atom.hi, owner.hi)
            )
        return TOP

    # -- expressions ----------------------------------------------------------

    def _type_of(self, expr: Expr):
        try:
            return self._types.type_of(expr, {})
        except Exception:
            return None

    def interval_of(
        self, expr: Expr, env: dict[str, Interval] | None = None, _depth: int = 0
    ) -> Interval:
        """Tuple-count bounds for a relational expression.

        ``env`` carries binder intervals (quantified variables are single
        atoms).  Integer-valued expressions get :data:`TOP` — callers that
        care use :meth:`int_interval`.
        """
        if _depth > _RECURSION_LIMIT:
            return TOP
        env = env or {}
        if isinstance(expr, NoneExpr):
            return EMPTY
        if isinstance(expr, (UnivExpr, IdenExpr)):
            # univ/iden span every root signature; the disjoint root sum is
            # a sound lower bound (ignoring Int atoms only lowers it).
            lo = 0
            for sig in self._info.sigs.values():
                if sig.parent is None:
                    lo += self.sig_interval(sig.name).lo
            return Interval(lo, None)
        if isinstance(expr, IntLit):
            return SCALAR
        if isinstance(expr, NameExpr):
            if expr.name in env:
                return env[expr.name]
            if expr.name in self._info.sigs:
                return self.sig_interval(expr.name)
            if expr.name in self._info.fields:
                return self._field_interval(expr.name)
            fun = self._info.funs.get(expr.name)
            if fun is not None and not fun.params:
                return self._decl_type_interval(fun.result)
            return TOP
        if isinstance(expr, UnaryExpr):
            operand = self.interval_of(expr.operand, env, _depth + 1)
            if expr.op is UnOp.TRANSPOSE:
                return operand
            if operand.is_empty and expr.op is UnOp.CLOSURE:
                return EMPTY
            # ^r ⊇ r and *r ⊇ ^r, so the operand's lower bound survives.
            return Interval(operand.lo, None)
        if isinstance(expr, BinaryExpr):
            return self._binary_interval(expr, env, _depth)
        if isinstance(expr, FunCall):
            fun = self._info.funs.get(expr.name)
            if fun is not None:
                # The declared result multiplicity binds any application.
                result = self._decl_type_interval(fun.result)
                return Interval(0, result.hi)
            return self._fallback_interval(expr)
        if isinstance(expr, Comprehension):
            hi: int | None = 1
            inner = dict(env)
            for decl in expr.decls:
                bound = self.interval_of(decl.bound, inner, _depth + 1)
                for name in decl.names:
                    hi = _mul(hi, bound.hi)
                    inner[name] = Interval(min(1, bound.lo), 1)
            return Interval(0, hi)
        return self._fallback_interval(expr)

    def _binary_interval(
        self, expr: BinaryExpr, env: dict[str, Interval], depth: int
    ) -> Interval:
        rel = self._type_of(expr)
        if rel is not None and not rel.is_int and rel.empty:
            return EMPTY
        if rel is not None and rel.is_int:
            return TOP
        left = self.interval_of(expr.left, env, depth + 1)
        right = self.interval_of(expr.right, env, depth + 1)
        op = expr.op
        if op is BinOp.UNION:
            return Interval(max(left.lo, right.lo), _add(left.hi, right.hi))
        if op is BinOp.DIFF:
            if right.hi is None:
                # Unboundedly many tuples may be removed: no lower bound
                # survives.
                return Interval(0, left.hi)
            return Interval(max(0, left.lo - right.hi), left.hi)
        if op is BinOp.INTERSECT:
            return Interval(0, _min_hi(left.hi, right.hi))
        if op is BinOp.OVERRIDE:
            return Interval(right.lo, _add(left.hi, right.hi))
        if op is BinOp.JOIN:
            if left.is_empty or right.is_empty:
                return EMPTY
            return Interval(0, _mul(left.hi, right.hi))
        if op is BinOp.PRODUCT:
            return Interval(left.lo * right.lo, _mul(left.hi, right.hi))
        if op is BinOp.DOM_RESTRICT:
            return Interval(0, right.hi)
        if op is BinOp.RAN_RESTRICT:
            return Interval(0, left.hi)
        return self._fallback_interval(expr)

    def _fallback_interval(self, expr: Expr) -> Interval:
        rel = self._type_of(expr)
        if rel is not None and not rel.is_int and rel.empty:
            return EMPTY
        return TOP

    # -- integers -------------------------------------------------------------

    def int_interval(
        self, expr: Expr, env: dict[str, Interval] | None = None
    ) -> Interval | None:
        """Bounds for an integer expression, or ``None`` if not integer-like.

        The engine evaluates cardinalities as exact unbounded counts (no
        bit-width wraparound), so ``#e >= 0`` really is a tautology here.
        """
        if isinstance(expr, IntLit):
            return Interval(expr.value, expr.value)
        if isinstance(expr, CardExpr):
            return self.interval_of(expr.operand, env)
        if isinstance(expr, BinaryExpr) and expr.op is BinOp.UNION:
            left = self.int_interval(expr.left, env)
            right = self.int_interval(expr.right, env)
            if left is None or right is None:
                return None
            return Interval(left.lo + right.lo, _add(left.hi, right.hi))
        return None

    # -- formulas -------------------------------------------------------------

    def truth(
        self, formula: Formula, env: dict[str, Interval] | None = None, _depth: int = 0
    ) -> bool | None:
        """Three-valued static truth: ``True`` = valid in every instance at
        every scope, ``False`` = unsatisfiable, ``None`` = undecided."""
        if _depth > _RECURSION_LIMIT:
            return None
        env = env or {}
        if isinstance(formula, Compare):
            return self._compare_truth(formula, env)
        if isinstance(formula, MultTest):
            return self._mult_truth(formula, env)
        if isinstance(formula, Not):
            inner = self.truth(formula.operand, env, _depth + 1)
            return None if inner is None else not inner
        if isinstance(formula, BoolBin):
            return self._bool_truth(formula, env, _depth)
        if isinstance(formula, ImpliesElse):
            cond = self.truth(formula.cond, env, _depth + 1)
            then = self.truth(formula.then, env, _depth + 1)
            other = self.truth(formula.other, env, _depth + 1)
            if cond is True:
                return then
            if cond is False:
                return other
            if then is True and other is True:
                return True
            if then is False and other is False:
                return False
            return None
        if isinstance(formula, Quantified):
            return self._quant_truth(formula, env, _depth)
        if isinstance(formula, Let):
            inner = dict(env)
            inner[formula.name] = self.interval_of(formula.value, env)
            return self.truth(formula.body, inner, _depth + 1)
        if isinstance(formula, Block):
            verdicts = [
                self.truth(inner, env, _depth + 1) for inner in formula.formulas
            ]
            if any(v is False for v in verdicts):
                return False
            if all(v is True for v in verdicts):
                return True
            return None
        if isinstance(formula, PredCall):
            return None
        return None

    def _bool_truth(
        self, formula: BoolBin, env: dict[str, Interval], depth: int
    ) -> bool | None:
        left = self.truth(formula.left, env, depth + 1)
        right = self.truth(formula.right, env, depth + 1)
        op = formula.op
        if op is LogicOp.AND:
            if left is False or right is False:
                return False
            if left is True and right is True:
                return True
            return None
        if op is LogicOp.OR:
            if left is True or right is True:
                return True
            if left is False and right is False:
                return False
            return None
        if op is LogicOp.IMPLIES:
            if left is False or right is True:
                return True
            if left is True and right is False:
                return False
            return None
        if op is LogicOp.IFF:
            if left is None or right is None:
                return None
            return left == right
        return None

    def _compare_truth(
        self, formula: Compare, env: dict[str, Interval]
    ) -> bool | None:
        left = self.int_interval(formula.left, env)
        right = self.int_interval(formula.right, env)
        if left is not None and right is not None:
            return _interval_compare(formula.op, left, right)
        # Relational special cases: a provably empty side decides
        # subset/equality comparisons.
        if formula.op in (CmpOp.IN, CmpOp.NOT_IN):
            operand = self.interval_of(formula.left, env)
            if operand.is_empty:
                return formula.op is CmpOp.IN
        if formula.op in (CmpOp.EQ, CmpOp.NEQ):
            lhs = self.interval_of(formula.left, env)
            rhs = self.interval_of(formula.right, env)
            if lhs.is_empty and rhs.is_empty:
                return formula.op is CmpOp.EQ
            if (lhs.is_empty and rhs.is_nonempty) or (
                rhs.is_empty and lhs.is_nonempty
            ):
                return formula.op is CmpOp.NEQ
        return None

    def _mult_truth(
        self, formula: MultTest, env: dict[str, Interval]
    ) -> bool | None:
        operand = self.interval_of(formula.operand, env)
        mult = formula.mult
        if mult is Mult.NO:
            if operand.is_empty:
                return True
            if operand.is_nonempty:
                return False
            return None
        if mult is Mult.SOME:
            if operand.is_nonempty:
                return True
            if operand.is_empty:
                return False
            return None
        if mult is Mult.LONE:
            if operand.hi is not None and operand.hi <= 1:
                return True
            if operand.lo >= 2:
                return False
            return None
        if mult is Mult.ONE:
            if operand.lo == 1 and operand.hi == 1:
                return True
            if operand.is_empty or operand.lo >= 2:
                return False
            return None
        return None

    def _quant_truth(
        self, formula: Quantified, env: dict[str, Interval], depth: int
    ) -> bool | None:
        inner = dict(env)
        domain_empty = False
        domain_nonempty = True
        bindings = SCALAR
        for decl in formula.decls:
            bound = self.interval_of(decl.bound, inner, depth + 1)
            if bound.is_empty:
                domain_empty = True
            if not bound.is_nonempty:
                domain_nonempty = False
            # `disj` shrinks the binding space (atoms must differ), so only
            # the upper bound survives for multi-name disjoint decls.
            lo_factor = 0 if decl.disj and len(decl.names) > 1 else bound.lo
            for name in decl.names:
                bindings = Interval(
                    bindings.lo * lo_factor, _mul(bindings.hi, bound.hi)
                )
                inner[name] = self._binder_interval(decl)
        body = self.truth(formula.body, inner, depth + 1)
        quant = formula.quant
        if quant is Quant.ALL:
            if domain_empty or body is True:
                return True
            if body is False and domain_nonempty:
                return False
            return None
        if quant is Quant.SOME:
            if domain_empty or body is False:
                return False
            if body is True and domain_nonempty:
                return True
            return None
        if quant is Quant.NO:
            if domain_empty or body is False:
                return True
            if body is True and domain_nonempty:
                return False
            return None
        if quant is Quant.LONE:
            if domain_empty or body is False:
                return True
            if body is True and bindings.hi is not None and bindings.hi <= 1:
                return True
            if body is True and bindings.lo >= 2:
                return False
            return None
        if quant is Quant.ONE:
            if domain_empty or body is False:
                return False
            if body is True and bindings.lo == 1 and bindings.hi == 1:
                return True
            if body is True and bindings.lo >= 2:
                return False
            return None
        return None

    @staticmethod
    def _binder_interval(decl: Decl) -> Interval:
        """What one bound variable denotes inside the body: a single atom
        for first-order binders, multiplicity bounds for set binders."""
        if decl.mult is None or decl.mult is Mult.ONE:
            return SCALAR
        return _MULT_INTERVALS.get(decl.mult, TOP)


def _interval_compare(op: CmpOp, left: Interval, right: Interval) -> bool | None:
    """Decide ``left op right`` when the interval orderings allow it."""

    def surely_lt() -> bool:
        return left.hi is not None and left.hi < right.lo

    def surely_gt() -> bool:
        return right.hi is not None and right.hi < left.lo

    def surely_lte() -> bool:
        return left.hi is not None and left.hi <= right.lo

    def surely_gte() -> bool:
        return right.hi is not None and right.hi <= left.lo

    if op is CmpOp.EQ:
        if left.lo == left.hi == right.lo == right.hi:
            return True
        if surely_lt() or surely_gt():
            return False
        return None
    if op is CmpOp.NEQ:
        if surely_lt() or surely_gt():
            return True
        if left.lo == left.hi == right.lo == right.hi:
            return False
        return None
    if op is CmpOp.LT:
        if surely_lt():
            return True
        if surely_gte():
            return False
        return None
    if op is CmpOp.LTE:
        if surely_lte():
            return True
        if surely_gt():
            return False
        return None
    if op is CmpOp.GT:
        if surely_gt():
            return True
        if surely_lte():
            return False
        return None
    if op is CmpOp.GTE:
        if surely_gte():
            return True
        if surely_lt():
            return False
        return None
    return None


def cardinality_analyzer(info: ModuleInfo) -> CardinalityAnalyzer:
    """The memoized per-module analyzer (mirrors ``inferencer_for``)."""
    cached = getattr(info, "_cardinality_analyzer", None)
    if cached is None:
        cached = CardinalityAnalyzer(info)
        info._cardinality_analyzer = cached  # type: ignore[attr-defined]
    return cached
