"""Recursive-descent parser for the Alloy dialect.

The grammar follows Alloy 4.2 operator precedence.  The classic
formula-vs-expression ambiguity at ``(`` is handled with bounded
backtracking: the parser first attempts a comparison (expression) parse and
falls back to a parenthesized formula on failure.
"""

from __future__ import annotations

from repro.alloy.errors import ParseError, SourcePos
from repro.alloy.nodes import (
    ArrowType,
    AssertDecl,
    BinaryExpr,
    BinOp,
    Block,
    BoolBin,
    CardExpr,
    Command,
    Compare,
    CmpOp,
    Comprehension,
    Decl,
    DeclType,
    Expr,
    FactDecl,
    FieldDecl,
    Formula,
    FunCall,
    FunDecl,
    IdenExpr,
    ImpliesElse,
    IntLit,
    Let,
    LogicOp,
    Module,
    Mult,
    MultTest,
    NameExpr,
    NoneExpr,
    Not,
    Paragraph,
    PredCall,
    PredDecl,
    Quant,
    Quantified,
    SigDecl,
    SigScope,
    UnaryExpr,
    UnaryType,
    UnivExpr,
    UnOp,
)
from repro.alloy.lexer import tokenize
from repro.alloy.tokens import Token, TokenKind

_MULT_KINDS = {
    TokenKind.SET: Mult.SET,
    TokenKind.ONE: Mult.ONE,
    TokenKind.LONE: Mult.LONE,
    TokenKind.SOME: Mult.SOME,
}

_QUANT_KINDS = {
    TokenKind.ALL: Quant.ALL,
    TokenKind.SOME: Quant.SOME,
    TokenKind.NO: Quant.NO,
    TokenKind.LONE: Quant.LONE,
    TokenKind.ONE: Quant.ONE,
}

_MULT_TEST_KINDS = {
    TokenKind.NO: Mult.NO,
    TokenKind.SOME: Mult.SOME,
    TokenKind.LONE: Mult.LONE,
    TokenKind.ONE: Mult.ONE,
}

_CMP_KINDS = {
    TokenKind.IN: CmpOp.IN,
    TokenKind.NOT_IN: CmpOp.NOT_IN,
    TokenKind.EQ: CmpOp.EQ,
    TokenKind.NEQ: CmpOp.NEQ,
    TokenKind.LT: CmpOp.LT,
    TokenKind.LTE: CmpOp.LTE,
    TokenKind.GT: CmpOp.GT,
    TokenKind.GTE: CmpOp.GTE,
}


class Parser:
    """Parses a token stream into a :class:`Module`."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _at(self, *kinds: TokenKind) -> bool:
        return self._peek().kind in kinds

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _accept(self, kind: TokenKind) -> Token | None:
        if self._at(kind):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, context: str) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise ParseError(
                f"expected {kind.value!r} {context}, found {token.text!r}", token.pos
            )
        return self._advance()

    def _pos(self) -> SourcePos:
        return self._peek().pos

    # -- entry point --------------------------------------------------------

    def parse_module(self) -> Module:
        pos = self._pos()
        name: str | None = None
        if self._accept(TokenKind.MODULE):
            name = self._expect(TokenKind.IDENT, "after 'module'").text
        paragraphs: list[Paragraph] = []
        while not self._at(TokenKind.EOF):
            paragraphs.append(self._parse_paragraph())
        return Module(name=name, paragraphs=paragraphs, pos=pos)

    # -- paragraphs ---------------------------------------------------------

    def _parse_paragraph(self) -> Paragraph:
        token = self._peek()
        if token.kind is TokenKind.ABSTRACT or token.kind is TokenKind.SIG:
            return self._parse_sig()
        if token.kind in _MULT_KINDS and self._peek(1).kind is TokenKind.SIG:
            return self._parse_sig()
        if token.kind is TokenKind.FACT:
            return self._parse_fact()
        if token.kind is TokenKind.PRED:
            return self._parse_pred()
        if token.kind is TokenKind.FUN:
            return self._parse_fun()
        if token.kind is TokenKind.ASSERT:
            return self._parse_assert()
        if token.kind in (TokenKind.RUN, TokenKind.CHECK):
            return self._parse_command()
        raise ParseError(f"unexpected token {token.text!r} at top level", token.pos)

    def _parse_sig(self) -> SigDecl:
        pos = self._pos()
        abstract = bool(self._accept(TokenKind.ABSTRACT))
        mult: Mult | None = None
        if self._peek().kind in _MULT_KINDS and self._peek(1).kind is TokenKind.SIG:
            mult = _MULT_KINDS[self._advance().kind]
        self._expect(TokenKind.SIG, "to begin signature")
        names = [self._expect(TokenKind.IDENT, "signature name").text]
        while self._accept(TokenKind.COMMA):
            names.append(self._expect(TokenKind.IDENT, "signature name").text)
        parent: str | None = None
        if self._accept(TokenKind.EXTENDS):
            parent = self._expect(TokenKind.IDENT, "after 'extends'").text
        self._expect(TokenKind.LBRACE, "to open signature body")
        fields: list[FieldDecl] = []
        while not self._at(TokenKind.RBRACE):
            fields.append(self._parse_field_decl())
            if not self._accept(TokenKind.COMMA):
                break
        self._expect(TokenKind.RBRACE, "to close signature body")
        appended = None
        if self._at(TokenKind.LBRACE):
            appended = self._parse_block()
        return SigDecl(
            names=names,
            fields=fields,
            parent=parent,
            abstract=abstract,
            mult=mult,
            appended=appended,
            pos=pos,
        )

    def _parse_field_decl(self) -> FieldDecl:
        pos = self._pos()
        name = self._expect(TokenKind.IDENT, "field name").text
        self._expect(TokenKind.COLON, "after field name")
        decl_type = self._parse_decl_type()
        return FieldDecl(name=name, type=decl_type, pos=pos)

    def _parse_decl_type(self) -> DeclType:
        """Parse a declared field type: ``mult? expr (mult? -> mult? expr)*``."""
        pos = self._pos()
        leading: Mult | None = None
        if self._peek().kind in _MULT_KINDS:
            leading = _MULT_KINDS[self._advance().kind]
        left_expr = self._parse_expr_no_arrow()
        left: DeclType = UnaryType(
            mult=leading if leading is not None else Mult.SET, expr=left_expr, pos=pos
        )
        if not self._at(TokenKind.ARROW) and self._peek().kind not in _MULT_KINDS:
            # Simple unary field; the Alloy default multiplicity is `one`.
            if leading is None:
                left = UnaryType(mult=Mult.ONE, expr=left_expr, pos=pos)
            return left
        # Arrow type (right-associative).
        return self._parse_arrow_tail(left)

    def _parse_arrow_tail(self, left: DeclType) -> DeclType:
        left_mult = Mult.SET
        if self._peek().kind in _MULT_KINDS:
            left_mult = _MULT_KINDS[self._advance().kind]
        self._expect(TokenKind.ARROW, "in arrow field type")
        right_mult = Mult.SET
        if self._peek().kind in _MULT_KINDS:
            right_mult = _MULT_KINDS[self._advance().kind]
        right_pos = self._pos()
        right_expr = self._parse_expr_no_arrow()
        right: DeclType = UnaryType(mult=Mult.SET, expr=right_expr, pos=right_pos)
        if self._at(TokenKind.ARROW) or (
            self._peek().kind in _MULT_KINDS and self._peek(1).kind is TokenKind.ARROW
        ):
            right = self._parse_arrow_tail(right)
        return ArrowType(
            left=left,
            right=right,
            left_mult=left_mult,
            right_mult=right_mult,
            pos=left.pos,
        )

    def _parse_fact(self) -> FactDecl:
        pos = self._pos()
        self._expect(TokenKind.FACT, "to begin fact")
        name: str | None = None
        if self._at(TokenKind.IDENT):
            name = self._advance().text
        body = self._parse_block()
        return FactDecl(name=name, body=body, pos=pos)

    def _parse_pred(self) -> PredDecl:
        pos = self._pos()
        self._expect(TokenKind.PRED, "to begin predicate")
        name = self._expect(TokenKind.IDENT, "predicate name").text
        params = self._parse_params()
        body = self._parse_block()
        return PredDecl(name=name, params=params, body=body, pos=pos)

    def _parse_fun(self) -> FunDecl:
        pos = self._pos()
        self._expect(TokenKind.FUN, "to begin function")
        name = self._expect(TokenKind.IDENT, "function name").text
        params = self._parse_params()
        self._expect(TokenKind.COLON, "before function result type")
        result = self._parse_decl_type()
        self._expect(TokenKind.LBRACE, "to open function body")
        body = self._parse_expr()
        self._expect(TokenKind.RBRACE, "to close function body")
        return FunDecl(name=name, params=params, result=result, body=body, pos=pos)

    def _parse_params(self) -> list[Decl]:
        params: list[Decl] = []
        if self._accept(TokenKind.LBRACKET):
            while not self._at(TokenKind.RBRACKET):
                params.append(self._parse_decl())
                if not self._accept(TokenKind.COMMA):
                    break
            self._expect(TokenKind.RBRACKET, "to close parameter list")
        return params

    def _parse_decl(self) -> Decl:
        pos = self._pos()
        disj = bool(self._accept(TokenKind.DISJ))
        names = [self._expect(TokenKind.IDENT, "declared name").text]
        while self._peek().kind is TokenKind.COMMA and self._peek(1).kind is TokenKind.IDENT:
            self._advance()
            names.append(self._advance().text)
        self._expect(TokenKind.COLON, "in declaration")
        mult: Mult | None = None
        if self._peek().kind in _MULT_KINDS:
            mult = _MULT_KINDS[self._advance().kind]
        bound = self._parse_expr()
        return Decl(names=names, bound=bound, mult=mult, disj=disj, pos=pos)

    def _parse_assert(self) -> AssertDecl:
        pos = self._pos()
        self._expect(TokenKind.ASSERT, "to begin assertion")
        name = self._expect(TokenKind.IDENT, "assertion name").text
        body = self._parse_block()
        return AssertDecl(name=name, body=body, pos=pos)

    def _parse_command(self) -> Command:
        pos = self._pos()
        kind = "run" if self._advance().kind is TokenKind.RUN else "check"
        target: str | None = None
        block: Block | None = None
        label: str | None = None
        if self._at(TokenKind.IDENT):
            target = self._advance().text
        elif self._at(TokenKind.LBRACE):
            block = self._parse_block()
        else:
            raise ParseError(
                f"expected a name or block after '{kind}'", self._pos()
            )
        default_scope = 3
        sig_scopes: list[SigScope] = []
        if self._accept(TokenKind.FOR):
            if self._at(TokenKind.NUMBER):
                default_scope = int(self._advance().text)
                if self._accept(TokenKind.BUT):
                    sig_scopes = self._parse_sig_scopes()
            else:
                sig_scopes = self._parse_sig_scopes()
        expect: int | None = None
        if self._accept(TokenKind.EXPECT):
            expect = int(self._expect(TokenKind.NUMBER, "after 'expect'").text)
        return Command(
            kind=kind,
            target=target,
            block=block,
            default_scope=default_scope,
            sig_scopes=sig_scopes,
            expect=expect,
            label=label,
            pos=pos,
        )

    def _parse_sig_scopes(self) -> list[SigScope]:
        scopes: list[SigScope] = []
        while True:
            pos = self._pos()
            exact = bool(self._accept(TokenKind.EXACTLY))
            bound = int(self._expect(TokenKind.NUMBER, "in scope bound").text)
            sig = self._expect(TokenKind.IDENT, "signature in scope").text
            scopes.append(SigScope(sig=sig, bound=bound, exact=exact, pos=pos))
            if not self._accept(TokenKind.COMMA):
                return scopes

    # -- formulas -----------------------------------------------------------

    def _parse_block(self) -> Block:
        pos = self._pos()
        self._expect(TokenKind.LBRACE, "to open block")
        formulas: list[Formula] = []
        while not self._at(TokenKind.RBRACE):
            formulas.append(self._parse_formula())
        self._expect(TokenKind.RBRACE, "to close block")
        return Block(formulas=formulas, pos=pos)

    def _parse_formula(self) -> Formula:
        return self._parse_or()

    def _parse_or(self) -> Formula:
        left = self._parse_iff()
        while self._at(TokenKind.OR, TokenKind.BARBAR):
            pos = self._advance().pos
            right = self._parse_iff()
            left = BoolBin(op=LogicOp.OR, left=left, right=right, pos=pos)
        return left

    def _parse_iff(self) -> Formula:
        left = self._parse_implies()
        while self._at(TokenKind.IFF, TokenKind.IFF_OP):
            pos = self._advance().pos
            right = self._parse_implies()
            left = BoolBin(op=LogicOp.IFF, left=left, right=right, pos=pos)
        return left

    def _parse_implies(self) -> Formula:
        left = self._parse_and()
        if self._at(TokenKind.IMPLIES, TokenKind.IMPLIES_OP):
            pos = self._advance().pos
            then = self._parse_implies()
            if self._accept(TokenKind.ELSE):
                other = self._parse_implies()
                return ImpliesElse(cond=left, then=then, other=other, pos=pos)
            return BoolBin(op=LogicOp.IMPLIES, left=left, right=then, pos=pos)
        return left

    def _parse_and(self) -> Formula:
        left = self._parse_unary_formula()
        while self._at(TokenKind.AND, TokenKind.AMPAMP):
            pos = self._advance().pos
            right = self._parse_unary_formula()
            left = BoolBin(op=LogicOp.AND, left=left, right=right, pos=pos)
        return left

    def _parse_unary_formula(self) -> Formula:
        token = self._peek()
        if token.kind in (TokenKind.NOT, TokenKind.BANG):
            self._advance()
            operand = self._parse_unary_formula()
            return Not(operand=operand, pos=token.pos)
        if token.kind is TokenKind.LET:
            return self._parse_let()
        if token.kind in _QUANT_KINDS and self._is_quantifier_ahead():
            return self._parse_quantified()
        return self._parse_atomic_formula()

    def _is_quantifier_ahead(self) -> bool:
        """After a quantifier keyword: ``disj? IDENT (, IDENT)* :`` means binder."""
        offset = 1
        if self._peek(offset).kind is TokenKind.DISJ:
            offset += 1
        if self._peek(offset).kind is not TokenKind.IDENT:
            return False
        offset += 1
        while (
            self._peek(offset).kind is TokenKind.COMMA
            and self._peek(offset + 1).kind is TokenKind.IDENT
        ):
            offset += 2
        return self._peek(offset).kind is TokenKind.COLON

    def _parse_quantified(self) -> Quantified:
        token = self._advance()
        quant = _QUANT_KINDS[token.kind]
        decls = [self._parse_decl()]
        while self._accept(TokenKind.COMMA):
            decls.append(self._parse_decl())
        self._expect(TokenKind.BAR, "before quantified body")
        body = self._parse_formula()
        return Quantified(quant=quant, decls=decls, body=body, pos=token.pos)

    def _parse_let(self) -> Let:
        token = self._expect(TokenKind.LET, "to begin let")
        name = self._expect(TokenKind.IDENT, "let-bound name").text
        self._expect(TokenKind.EQ, "in let binding")
        value = self._parse_expr()
        self._expect(TokenKind.BAR, "before let body")
        body = self._parse_formula()
        return Let(name=name, value=value, body=body, pos=token.pos)

    def _parse_atomic_formula(self) -> Formula:
        token = self._peek()
        if token.kind in _MULT_TEST_KINDS and token.kind in (
            TokenKind.NO,
            TokenKind.SOME,
            TokenKind.LONE,
            TokenKind.ONE,
        ):
            # Multiplicity test: `some expr`, `no expr`, etc.
            self._advance()
            operand = self._parse_expr()
            return MultTest(
                mult=_MULT_TEST_KINDS[token.kind], operand=operand, pos=token.pos
            )
        if token.kind is TokenKind.LBRACE:
            return self._parse_block()
        if token.kind is TokenKind.LPAREN:
            # Ambiguous: could be `(expr) op expr` or `(formula)`.
            saved = self._index
            try:
                return self._parse_comparison()
            except ParseError:
                self._index = saved
            self._advance()
            inner = self._parse_formula()
            self._expect(TokenKind.RPAREN, "to close parenthesized formula")
            return inner
        return self._parse_comparison()

    def _parse_comparison(self) -> Formula:
        pos = self._pos()
        left = self._parse_expr()
        token = self._peek()
        negated = False
        if token.kind is TokenKind.NOT:
            # `a not in b` / `a not = b`
            negated = True
            self._advance()
            token = self._peek()
        if token.kind in _CMP_KINDS:
            op = _CMP_KINDS[token.kind]
            self._advance()
            right = self._parse_expr()
            formula: Formula = Compare(op=op, left=left, right=right, pos=token.pos)
            if negated:
                formula = Not(operand=formula, pos=token.pos)
            return formula
        if negated:
            raise ParseError("expected comparison operator after 'not'", token.pos)
        # Bare name or call in formula position is a predicate invocation.
        if isinstance(left, NameExpr):
            return PredCall(name=left.name, args=[], pos=left.pos)
        if isinstance(left, FunCall):
            return PredCall(name=left.name, args=left.args, pos=left.pos)
        raise ParseError("expected a formula", pos)

    # -- expressions --------------------------------------------------------

    def _parse_expr(self) -> Expr:
        return self._parse_union()

    def _parse_union(self) -> Expr:
        left = self._parse_card()
        while self._at(TokenKind.PLUS, TokenKind.MINUS):
            token = self._advance()
            op = BinOp.UNION if token.kind is TokenKind.PLUS else BinOp.DIFF
            right = self._parse_card()
            left = BinaryExpr(op=op, left=left, right=right, pos=token.pos)
        return left

    def _parse_card(self) -> Expr:
        if self._at(TokenKind.HASH):
            token = self._advance()
            operand = self._parse_card()
            return CardExpr(operand=operand, pos=token.pos)
        return self._parse_override()

    def _parse_override(self) -> Expr:
        left = self._parse_intersect()
        while self._at(TokenKind.PLUSPLUS):
            token = self._advance()
            right = self._parse_intersect()
            left = BinaryExpr(op=BinOp.OVERRIDE, left=left, right=right, pos=token.pos)
        return left

    def _parse_intersect(self) -> Expr:
        left = self._parse_product()
        while self._at(TokenKind.AMP):
            token = self._advance()
            right = self._parse_product()
            left = BinaryExpr(op=BinOp.INTERSECT, left=left, right=right, pos=token.pos)
        return left

    def _parse_product(self) -> Expr:
        left = self._parse_restrict()
        if self._at(TokenKind.ARROW):
            token = self._advance()
            right = self._parse_product()
            return BinaryExpr(op=BinOp.PRODUCT, left=left, right=right, pos=token.pos)
        return left

    def _parse_restrict(self) -> Expr:
        left = self._parse_postfix()
        while self._at(TokenKind.DOM_RESTRICT, TokenKind.RAN_RESTRICT):
            token = self._advance()
            op = (
                BinOp.DOM_RESTRICT
                if token.kind is TokenKind.DOM_RESTRICT
                else BinOp.RAN_RESTRICT
            )
            right = self._parse_postfix()
            left = BinaryExpr(op=op, left=left, right=right, pos=token.pos)
        return left

    def _parse_postfix(self) -> Expr:
        """Handles `.` join and `[...]` box join, both left-associative."""
        left = self._parse_unary_expr()
        while True:
            if self._at(TokenKind.DOT):
                token = self._advance()
                right = self._parse_unary_expr()
                left = BinaryExpr(op=BinOp.JOIN, left=left, right=right, pos=token.pos)
            elif self._at(TokenKind.LBRACKET):
                token = self._advance()
                args = [self._parse_expr()]
                while self._accept(TokenKind.COMMA):
                    args.append(self._parse_expr())
                self._expect(TokenKind.RBRACKET, "to close box join")
                if isinstance(left, NameExpr):
                    # Might be a predicate/function call; resolver decides.
                    left = FunCall(name=left.name, args=args, pos=left.pos)
                else:
                    # e1[e2, e3] desugars to e3.(e2.e1)
                    result = left
                    for arg in args:
                        result = BinaryExpr(
                            op=BinOp.JOIN, left=arg, right=result, pos=token.pos
                        )
                    left = result
            else:
                return left

    def _parse_unary_expr(self) -> Expr:
        token = self._peek()
        if token.kind is TokenKind.TILDE:
            self._advance()
            return UnaryExpr(
                op=UnOp.TRANSPOSE, operand=self._parse_unary_expr(), pos=token.pos
            )
        if token.kind is TokenKind.CARET:
            self._advance()
            return UnaryExpr(
                op=UnOp.CLOSURE, operand=self._parse_unary_expr(), pos=token.pos
            )
        if token.kind is TokenKind.STAR:
            self._advance()
            return UnaryExpr(
                op=UnOp.RCLOSURE, operand=self._parse_unary_expr(), pos=token.pos
            )
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.kind is TokenKind.IDENT:
            self._advance()
            return NameExpr(name=token.text, pos=token.pos)
        if token.kind is TokenKind.AT:
            self._advance()
            name = self._expect(TokenKind.IDENT, "after '@'")
            return NameExpr(name=name.text, raw=True, pos=token.pos)
        if token.kind is TokenKind.NONE:
            self._advance()
            return NoneExpr(pos=token.pos)
        if token.kind is TokenKind.UNIV:
            self._advance()
            return UnivExpr(pos=token.pos)
        if token.kind is TokenKind.IDEN:
            self._advance()
            return IdenExpr(pos=token.pos)
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return IntLit(value=int(token.text), pos=token.pos)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            inner = self._parse_expr()
            self._expect(TokenKind.RPAREN, "to close parenthesized expression")
            return inner
        if token.kind is TokenKind.LBRACE:
            return self._parse_comprehension()
        raise ParseError(f"expected an expression, found {token.text!r}", token.pos)

    def _parse_expr_no_arrow(self) -> Expr:
        """Parse an expression that stops before `->` (used in decl types)."""
        left = self._parse_restrict()
        while self._at(TokenKind.PLUS, TokenKind.MINUS, TokenKind.AMP):
            token = self._advance()
            op = {
                TokenKind.PLUS: BinOp.UNION,
                TokenKind.MINUS: BinOp.DIFF,
                TokenKind.AMP: BinOp.INTERSECT,
            }[token.kind]
            right = self._parse_restrict()
            left = BinaryExpr(op=op, left=left, right=right, pos=token.pos)
        return left

    def _parse_comprehension(self) -> Comprehension:
        token = self._expect(TokenKind.LBRACE, "to open comprehension")
        decls = [self._parse_decl()]
        while self._accept(TokenKind.COMMA):
            decls.append(self._parse_decl())
        self._expect(TokenKind.BAR, "before comprehension body")
        body = self._parse_formula()
        self._expect(TokenKind.RBRACE, "to close comprehension")
        return Comprehension(decls=decls, body=body, pos=token.pos)


def parse_module(source: str) -> Module:
    """Parse a complete specification from source text."""
    return Parser(tokenize(source)).parse_module()


def parse_formula(source: str) -> Formula:
    """Parse a standalone formula (used by tests and repair tools)."""
    parser = Parser(tokenize(source))
    formula = parser._parse_formula()
    token = parser._peek()
    if token.kind is not TokenKind.EOF:
        raise ParseError(f"unexpected trailing input {token.text!r}", token.pos)
    return formula


def parse_expr(source: str) -> Expr:
    """Parse a standalone expression (used by tests and repair tools)."""
    parser = Parser(tokenize(source))
    expr = parser._parse_expr()
    token = parser._peek()
    if token.kind is not TokenKind.EOF:
        raise ParseError(f"unexpected trailing input {token.text!r}", token.pos)
    return expr
