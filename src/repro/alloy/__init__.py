"""Front end for the Alloy specification dialect used throughout this repo.

Public API::

    from repro.alloy import parse_module, print_module, resolve_module

    module = parse_module(source_text)
    info = resolve_module(module)      # symbol tables + arity checking
    text = print_module(module)        # canonical source text
"""

from repro.alloy.errors import (
    AlloyError,
    AlloyTypeError,
    EvaluationError,
    LexError,
    ParseError,
    ResolutionError,
    ScopeError,
    SourcePos,
)
from repro.alloy.lexer import tokenize
from repro.alloy.parser import parse_expr, parse_formula, parse_module
from repro.alloy.pretty import (
    print_expr,
    print_formula,
    print_module,
    print_paragraph,
)
from repro.alloy.resolver import (
    INT_ARITY,
    FieldInfo,
    ModuleInfo,
    SigInfo,
    arity_of,
    check_formula,
    resolve_module,
)

__all__ = [
    "AlloyError",
    "AlloyTypeError",
    "EvaluationError",
    "FieldInfo",
    "INT_ARITY",
    "LexError",
    "ModuleInfo",
    "ParseError",
    "ResolutionError",
    "ScopeError",
    "SigInfo",
    "SourcePos",
    "arity_of",
    "check_formula",
    "parse_expr",
    "parse_formula",
    "parse_module",
    "print_expr",
    "print_formula",
    "print_module",
    "print_paragraph",
    "resolve_module",
    "tokenize",
]
