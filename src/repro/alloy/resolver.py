"""Name resolution and arity checking for the Alloy dialect.

The resolver validates a parsed :class:`Module` and produces a
:class:`ModuleInfo` capturing the signature hierarchy, field signatures, and
callable paragraphs.  The analyzer, evaluator, and repair tools all consume
``ModuleInfo`` rather than re-deriving symbol tables.

Integer-valued expressions are given the pseudo-arity ``INT_ARITY`` (0), so a
single arity computation covers both relational and integer expressions.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.alloy.errors import AlloyTypeError, ResolutionError
from repro.alloy.nodes import (
    ArrowType,
    AssertDecl,
    BinaryExpr,
    BinOp,
    Block,
    BoolBin,
    CardExpr,
    Command,
    Compare,
    CmpOp,
    Comprehension,
    Decl,
    DeclType,
    Expr,
    FactDecl,
    FieldDecl,
    Formula,
    FunCall,
    FunDecl,
    IdenExpr,
    ImpliesElse,
    IntLit,
    Let,
    Module,
    Mult,
    MultTest,
    NameExpr,
    NoneExpr,
    Not,
    PredCall,
    PredDecl,
    Quantified,
    SigDecl,
    UnaryExpr,
    UnaryType,
    UnivExpr,
    UnOp,
)

INT_ARITY = 0
"""Pseudo-arity assigned to integer-valued expressions."""


@dataclass
class SigInfo:
    """Resolved information about one signature."""

    name: str
    parent: str | None
    abstract: bool
    mult: Mult | None
    decl: SigDecl
    children: list[str] = field(default_factory=list)

    @property
    def is_top_level(self) -> bool:
        return self.parent is None


@dataclass
class FieldInfo:
    """Resolved information about one field."""

    name: str
    owner: str
    decl: FieldDecl
    columns: tuple[str, ...]

    @property
    def arity(self) -> int:
        return len(self.columns)


@dataclass
class ModuleInfo:
    """The resolved symbol tables for a module."""

    module: Module
    sigs: dict[str, SigInfo]
    fields: dict[str, FieldInfo]
    preds: dict[str, PredDecl]
    funs: dict[str, FunDecl]
    asserts: dict[str, AssertDecl]
    facts: list[FactDecl]
    commands: list[Command]

    def top_level_sigs(self) -> list[SigInfo]:
        """Signatures with no parent, in declaration order."""
        return [info for info in self.sigs.values() if info.is_top_level]

    def descendants(self, name: str) -> list[str]:
        """All signatures at or below ``name`` in the hierarchy."""
        result = [name]
        for child in self.sigs[name].children:
            result.extend(self.descendants(child))
        return result

    def ancestors(self, name: str) -> list[str]:
        """All signatures at or above ``name`` (self first)."""
        result = [name]
        parent = self.sigs[name].parent
        while parent is not None:
            result.append(parent)
            parent = self.sigs[parent].parent
        return result

    def root_of(self, name: str) -> str:
        """The top-level ancestor of signature ``name``."""
        return self.ancestors(name)[-1]

    # -- type facts (consumed by repro.analysis) ---------------------------

    def overlapping(self, a: str, b: str) -> bool:
        """Can signatures ``a`` and ``b`` share an atom?

        True iff one is an ancestor of the other — atoms belong to a single
        chain of the hierarchy, so unrelated signatures are disjoint.
        """
        return a == b or a in self.ancestors(b) or b in self.ancestors(a)

    def meet_sigs(self, a: str, b: str) -> str | None:
        """The more specific of two overlapping signatures, else ``None``."""
        if a == b or b in self.ancestors(a):
            return a
        if a in self.ancestors(b):
            return b
        return None


class Resolver:
    """Performs resolution and arity checking for one module."""

    def __init__(self, module: Module) -> None:
        self._module = module
        self._sigs: dict[str, SigInfo] = {}
        self._fields: dict[str, FieldInfo] = {}
        self._preds: dict[str, PredDecl] = {}
        self._funs: dict[str, FunDecl] = {}
        self._asserts: dict[str, AssertDecl] = {}
        self._facts: list[FactDecl] = []
        self._commands: list[Command] = []

    def resolve(self) -> ModuleInfo:
        """Resolve the module, raising on semantic errors."""
        self._collect_sigs()
        self._collect_fields()
        self._collect_paragraphs()
        info = ModuleInfo(
            module=self._module,
            sigs=self._sigs,
            fields=self._fields,
            preds=self._preds,
            funs=self._funs,
            asserts=self._asserts,
            facts=self._facts,
            commands=self._commands,
        )
        _check_module(info)
        return info

    def _collect_sigs(self) -> None:
        for sig_decl in self._module.sigs:
            for name in sig_decl.names:
                if name in self._sigs:
                    raise ResolutionError(
                        f"duplicate signature {name!r}", sig_decl.pos
                    )
                self._sigs[name] = SigInfo(
                    name=name,
                    parent=sig_decl.parent,
                    abstract=sig_decl.abstract,
                    mult=sig_decl.mult,
                    decl=sig_decl,
                )
        for info in self._sigs.values():
            if info.parent is not None:
                if info.parent not in self._sigs:
                    raise ResolutionError(
                        f"unknown parent signature {info.parent!r}", info.decl.pos
                    )
                self._sigs[info.parent].children.append(info.name)
        for name in self._sigs:
            self._check_acyclic_hierarchy(name)

    def _check_acyclic_hierarchy(self, name: str) -> None:
        seen = {name}
        parent = self._sigs[name].parent
        while parent is not None:
            if parent in seen:
                raise ResolutionError(
                    f"cyclic signature hierarchy through {name!r}",
                    self._sigs[name].decl.pos,
                )
            seen.add(parent)
            parent = self._sigs[parent].parent

    def _collect_fields(self) -> None:
        for sig_decl in self._module.sigs:
            owner = sig_decl.names[0]
            for field_decl in sig_decl.fields:
                if field_decl.name in self._fields:
                    raise ResolutionError(
                        f"duplicate field {field_decl.name!r} "
                        "(field names must be globally unique in this dialect)",
                        field_decl.pos,
                    )
                if field_decl.name in self._sigs:
                    raise ResolutionError(
                        f"field {field_decl.name!r} shadows a signature",
                        field_decl.pos,
                    )
                columns = (owner,) + self._columns_of(field_decl.type)
                self._fields[field_decl.name] = FieldInfo(
                    name=field_decl.name,
                    owner=owner,
                    decl=field_decl,
                    columns=columns,
                )

    def _columns_of(self, decl_type: DeclType) -> tuple[str, ...]:
        if isinstance(decl_type, UnaryType):
            return (self._column_sig(decl_type.expr),)
        if isinstance(decl_type, ArrowType):
            return self._columns_of(decl_type.left) + self._columns_of(decl_type.right)
        raise ResolutionError(f"unsupported field type {decl_type!r}", decl_type.pos)

    def _column_sig(self, expr: Expr) -> str:
        """A field-type leaf must name a signature (used for bounds)."""
        if isinstance(expr, NameExpr) and expr.name in self._sigs:
            return expr.name
        if isinstance(expr, UnivExpr):
            raise ResolutionError("'univ' field columns are not supported", expr.pos)
        raise ResolutionError(
            "field type columns must be signature names", expr.pos
        )

    def _desugar_appended_facts(self) -> None:
        """Turn appended signature facts into ordinary facts.

        ``sig S {...} { F }`` becomes ``fact { all this: S | F' }`` where
        ``F'`` replaces unshadowed bare references to fields of ``S`` (or an
        ancestor) by ``this.field`` — Alloy's receiver desugaring."""
        import copy

        from repro.alloy.nodes import (
            BinaryExpr,
            BinOp,
            Block,
            Decl,
            FactDecl,
            Quant,
            Quantified,
        )

        for sig_decl in self._module.sigs:
            if sig_decl.appended is None:
                continue
            sig_name = sig_decl.names[0]
            ancestors = set(self._ancestor_names(sig_name))
            own_fields = {
                name
                for name, info in self._fields.items()
                if info.owner in ancestors
            }
            body = copy.deepcopy(sig_decl.appended)
            _rewrite_receiver_fields(body, own_fields, shadowed=set())
            formula = Quantified(
                quant=Quant.ALL,
                decls=[Decl(names=["this"], bound=NameExpr(name=sig_name))],
                body=body,
                pos=sig_decl.pos,
            )
            self._facts.append(
                FactDecl(
                    name=f"{sig_name}_appended",
                    body=Block(formulas=[formula]),
                    pos=sig_decl.pos,
                )
            )

    def _ancestor_names(self, name: str) -> list[str]:
        result = [name]
        parent = self._sigs[name].parent
        while parent is not None:
            result.append(parent)
            parent = self._sigs[parent].parent
        return result

    def _collect_paragraphs(self) -> None:
        self._desugar_appended_facts()
        for paragraph in self._module.paragraphs:
            if isinstance(paragraph, PredDecl):
                self._declare_callable(paragraph.name, paragraph.pos)
                self._preds[paragraph.name] = paragraph
            elif isinstance(paragraph, FunDecl):
                self._declare_callable(paragraph.name, paragraph.pos)
                self._funs[paragraph.name] = paragraph
            elif isinstance(paragraph, AssertDecl):
                if paragraph.name in self._asserts:
                    raise ResolutionError(
                        f"duplicate assertion {paragraph.name!r}", paragraph.pos
                    )
                self._asserts[paragraph.name] = paragraph
            elif isinstance(paragraph, FactDecl):
                self._facts.append(paragraph)
            elif isinstance(paragraph, Command):
                self._commands.append(paragraph)

    def _declare_callable(self, name: str, pos) -> None:
        if name in self._preds or name in self._funs:
            raise ResolutionError(f"duplicate predicate/function {name!r}", pos)
        if name in self._sigs or name in self._fields:
            raise ResolutionError(
                f"predicate/function {name!r} shadows a signature or field", pos
            )


def _rewrite_receiver_fields(node, own_fields: set[str], shadowed: set[str]) -> None:
    """In-place receiver desugaring for appended signature facts.

    Replaces child ``NameExpr`` nodes naming an unshadowed own-field with
    ``this.field``; recurses with binder names added to ``shadowed``."""
    import dataclasses

    from repro.alloy.nodes import (
        BinaryExpr,
        BinOp,
        Comprehension,
        Decl,
        Let,
        Node,
        Quantified,
    )

    inner_shadowed = set(shadowed)
    if isinstance(node, (Quantified, Comprehension)):
        inner_shadowed |= {n for d in node.decls for n in d.names}
    elif isinstance(node, Let):
        inner_shadowed.add(node.name)

    for f in dataclasses.fields(node):
        value = getattr(node, f.name)
        items = value if isinstance(value, list) else [value]
        for index, item in enumerate(items):
            if not isinstance(item, Node):
                continue
            # Binder bounds are evaluated in the *outer* scope.
            child_shadowed = (
                shadowed if isinstance(node, (Quantified, Comprehension, Let))
                and f.name in ("decls", "value")
                else inner_shadowed
            )
            if (
                isinstance(item, NameExpr)
                and not item.raw
                and item.name in own_fields
                and item.name not in child_shadowed
            ):
                replacement = BinaryExpr(
                    op=BinOp.JOIN,
                    left=NameExpr(name="this", pos=item.pos),
                    right=NameExpr(name=item.name, pos=item.pos),
                    pos=item.pos,
                )
                if isinstance(value, list):
                    value[index] = replacement
                else:
                    setattr(node, f.name, replacement)
            else:
                _rewrite_receiver_fields(item, own_fields, child_shadowed)


_RESOLVE_MEMO = threading.local()

_RESOLVE_MEMO_LIMIT = 512
"""Cap on the per-thread resolution memo (entries pin module ASTs alive)."""


def resolve_module(module: Module) -> ModuleInfo:
    """Resolve and check ``module``, returning its symbol tables.

    Successful resolutions are memoized per thread by module *identity*:
    during repair the same candidate object is resolved by mutant
    generation, lint pruning, and the oracle in turn, and resolution is
    pure (``ModuleInfo`` is never mutated), so they can share one result.
    """
    memo = getattr(_RESOLVE_MEMO, "entries", None)
    if memo is None:
        memo = _RESOLVE_MEMO.entries = OrderedDict()
    entry = memo.get(id(module))
    if entry is not None and entry[0] is module:
        memo.move_to_end(id(module))
        return entry[1]
    info = Resolver(module).resolve()
    memo[id(module)] = (module, info)
    if len(memo) > _RESOLVE_MEMO_LIMIT:
        memo.popitem(last=False)
    return info


# ---------------------------------------------------------------------------
# Arity checking
# ---------------------------------------------------------------------------


def _check_module(info: ModuleInfo) -> None:
    """Arity-check every paragraph body in the module."""
    for sig in info.module.sigs:
        for field_decl in sig.fields:
            _check_decl_type(info, field_decl.type)
    for fact in info.facts:
        check_formula(info, fact.body, {})
    for pred in info.preds.values():
        env = _param_env(info, pred.params)
        check_formula(info, pred.body, env)
    for fun in info.funs.values():
        env = _param_env(info, fun.params)
        result_arity = _decl_type_arity(fun.result)
        body_arity = arity_of(info, fun.body, env)
        if body_arity != result_arity:
            raise AlloyTypeError(
                f"function {fun.name!r} body arity {body_arity} does not match "
                f"declared result arity {result_arity}",
                fun.pos,
            )
    for assertion in info.asserts.values():
        check_formula(info, assertion.body, {})
    for command in info.commands:
        _check_command(info, command)


def _check_command(info: ModuleInfo, command: Command) -> None:
    if command.target is not None:
        if command.kind == "run":
            if command.target not in info.preds:
                raise ResolutionError(
                    f"run target {command.target!r} is not a predicate", command.pos
                )
            if info.preds[command.target].params:
                raise ResolutionError(
                    f"run target {command.target!r} must take no parameters "
                    "(parameters are implicitly existential in this dialect)",
                    command.pos,
                )
        else:
            if command.target not in info.asserts:
                raise ResolutionError(
                    f"check target {command.target!r} is not an assertion",
                    command.pos,
                )
    elif command.block is not None:
        check_formula(info, command.block, {})
    for scope in command.sig_scopes:
        if scope.sig not in info.sigs:
            raise ResolutionError(
                f"scope names unknown signature {scope.sig!r}", scope.pos
            )


def _check_decl_type(info: ModuleInfo, decl_type: DeclType) -> None:
    if isinstance(decl_type, UnaryType):
        arity = arity_of(info, decl_type.expr, {})
        if arity != 1:
            raise AlloyTypeError(
                "field type columns must be unary", decl_type.pos
            )
    elif isinstance(decl_type, ArrowType):
        _check_decl_type(info, decl_type.left)
        _check_decl_type(info, decl_type.right)


def _decl_type_arity(decl_type: DeclType) -> int:
    if isinstance(decl_type, UnaryType):
        return 1
    if isinstance(decl_type, ArrowType):
        return _decl_type_arity(decl_type.left) + _decl_type_arity(decl_type.right)
    raise AlloyTypeError(f"unsupported declared type {decl_type!r}", decl_type.pos)


def _param_env(info: ModuleInfo, params: list[Decl]) -> dict[str, int]:
    env: dict[str, int] = {}
    for decl in params:
        bound_arity = arity_of(info, decl.bound, env)
        for name in decl.names:
            env[name] = bound_arity
    return env


def arity_of(info: ModuleInfo, expr: Expr, env: dict[str, int]) -> int:
    """Compute the arity of ``expr`` (``INT_ARITY`` for integer expressions).

    Raises :class:`AlloyTypeError` on arity violations and
    :class:`ResolutionError` on unknown names.
    """
    if isinstance(expr, NameExpr):
        if expr.name in env:
            return env[expr.name]
        if expr.name in info.sigs:
            return 1
        if expr.name in info.fields:
            return info.fields[expr.name].arity
        if expr.name in info.funs and not info.funs[expr.name].params:
            return _decl_type_arity(info.funs[expr.name].result)
        raise ResolutionError(f"unknown name {expr.name!r}", expr.pos)
    if isinstance(expr, (NoneExpr, UnivExpr)):
        return 1
    if isinstance(expr, IdenExpr):
        return 2
    if isinstance(expr, IntLit):
        return INT_ARITY
    if isinstance(expr, CardExpr):
        operand = arity_of(info, expr.operand, env)
        if operand == INT_ARITY:
            raise AlloyTypeError("cannot take cardinality of an integer", expr.pos)
        return INT_ARITY
    if isinstance(expr, UnaryExpr):
        operand = arity_of(info, expr.operand, env)
        if operand != 2:
            raise AlloyTypeError(
                f"{expr.op.value!r} requires a binary relation", expr.pos
            )
        return 2
    if isinstance(expr, BinaryExpr):
        return _binary_arity(info, expr, env)
    if isinstance(expr, FunCall):
        return _call_arity(info, expr, env)
    if isinstance(expr, Comprehension):
        inner = dict(env)
        total = 0
        for decl in expr.decls:
            bound_arity = arity_of(info, decl.bound, inner)
            if bound_arity != 1:
                raise AlloyTypeError(
                    "comprehension binders must range over unary sets", decl.pos
                )
            for name in decl.names:
                inner[name] = 1
                total += 1
        check_formula(info, expr.body, inner)
        return total
    raise AlloyTypeError(f"cannot type expression {expr!r}", expr.pos)


def _binary_arity(info: ModuleInfo, expr: BinaryExpr, env: dict[str, int]) -> int:
    left = arity_of(info, expr.left, env)
    right = arity_of(info, expr.right, env)
    op = expr.op
    if op in (BinOp.UNION, BinOp.DIFF):
        if left == INT_ARITY and right == INT_ARITY:
            return INT_ARITY  # integer add/sub
        if left != right:
            raise AlloyTypeError(
                f"{op.value!r} operands must have equal arity "
                f"({left} vs {right})",
                expr.pos,
            )
        return left
    if op in (BinOp.INTERSECT, BinOp.OVERRIDE):
        if left != right or left == INT_ARITY:
            raise AlloyTypeError(
                f"{op.value!r} operands must be relations of equal arity", expr.pos
            )
        return left
    if op is BinOp.JOIN:
        if left == INT_ARITY or right == INT_ARITY:
            raise AlloyTypeError("cannot join integer expressions", expr.pos)
        result = left + right - 2
        if result < 1:
            raise AlloyTypeError("join of two unary relations is ill-formed", expr.pos)
        return result
    if op is BinOp.PRODUCT:
        if left == INT_ARITY or right == INT_ARITY:
            raise AlloyTypeError("cannot form product of integers", expr.pos)
        return left + right
    if op is BinOp.DOM_RESTRICT:
        if left != 1:
            raise AlloyTypeError("domain restriction needs a unary left operand", expr.pos)
        if right == INT_ARITY:
            raise AlloyTypeError("cannot restrict an integer", expr.pos)
        return right
    if op is BinOp.RAN_RESTRICT:
        if right != 1:
            raise AlloyTypeError("range restriction needs a unary right operand", expr.pos)
        if left == INT_ARITY:
            raise AlloyTypeError("cannot restrict an integer", expr.pos)
        return left
    raise AlloyTypeError(f"unsupported operator {op!r}", expr.pos)


def _call_arity(info: ModuleInfo, expr: FunCall, env: dict[str, int]) -> int:
    if expr.name in info.funs:
        fun = info.funs[expr.name]
        _check_call_args(info, fun.params, expr.args, env, expr)
        return _decl_type_arity(fun.result)
    # Not a function: `name[args]` is sugar for joins `args... . name`.
    base_arity = arity_of(info, NameExpr(name=expr.name, pos=expr.pos), env)
    result = base_arity
    for arg in expr.args:
        arg_arity = arity_of(info, arg, env)
        if arg_arity == INT_ARITY:
            raise AlloyTypeError("cannot box-join an integer", expr.pos)
        result = result + arg_arity - 2
        if result < 1:
            raise AlloyTypeError("box join produces ill-formed arity", expr.pos)
    return result


def _check_call_args(
    info: ModuleInfo,
    params: list[Decl],
    args: list[Expr],
    env: dict[str, int],
    site: Expr | Formula,
) -> None:
    param_names = [name for decl in params for name in decl.names]
    if len(param_names) != len(args):
        raise AlloyTypeError(
            f"call expects {len(param_names)} arguments, got {len(args)}", site.pos
        )
    param_env: dict[str, int] = {}
    index = 0
    for decl in params:
        bound_arity = arity_of(info, decl.bound, param_env)
        for name in decl.names:
            param_env[name] = bound_arity
            arg_arity = arity_of(info, args[index], env)
            if arg_arity != bound_arity:
                raise AlloyTypeError(
                    f"argument {index + 1} has arity {arg_arity}, "
                    f"expected {bound_arity}",
                    site.pos,
                )
            index += 1


def check_formula(info: ModuleInfo, formula: Formula, env: dict[str, int]) -> None:
    """Arity-check a formula, raising on violations."""
    if isinstance(formula, Compare):
        left = arity_of(info, formula.left, env)
        right = arity_of(info, formula.right, env)
        if formula.op in (CmpOp.LT, CmpOp.LTE, CmpOp.GT, CmpOp.GTE):
            if left != INT_ARITY or right != INT_ARITY:
                raise AlloyTypeError(
                    f"{formula.op.value!r} requires integer operands", formula.pos
                )
        elif formula.op in (CmpOp.EQ, CmpOp.NEQ):
            if left != right:
                raise AlloyTypeError(
                    f"equality operands must have equal arity ({left} vs {right})",
                    formula.pos,
                )
        else:  # in / !in
            if left == INT_ARITY or right == INT_ARITY or left != right:
                raise AlloyTypeError(
                    "'in' operands must be relations of equal arity", formula.pos
                )
        return
    if isinstance(formula, MultTest):
        operand = arity_of(info, formula.operand, env)
        if operand == INT_ARITY:
            raise AlloyTypeError(
                "multiplicity tests apply to relations, not integers", formula.pos
            )
        return
    if isinstance(formula, Not):
        check_formula(info, formula.operand, env)
        return
    if isinstance(formula, BoolBin):
        check_formula(info, formula.left, env)
        check_formula(info, formula.right, env)
        return
    if isinstance(formula, ImpliesElse):
        check_formula(info, formula.cond, env)
        check_formula(info, formula.then, env)
        check_formula(info, formula.other, env)
        return
    if isinstance(formula, Quantified):
        inner = dict(env)
        for decl in formula.decls:
            bound_arity = arity_of(info, decl.bound, inner)
            if bound_arity != 1 and decl.mult is not Mult.SET:
                raise AlloyTypeError(
                    "quantifier binders must range over unary sets", decl.pos
                )
            for name in decl.names:
                inner[name] = bound_arity
        check_formula(info, formula.body, inner)
        return
    if isinstance(formula, Let):
        value_arity = arity_of(info, formula.value, env)
        inner = dict(env)
        inner[formula.name] = value_arity
        check_formula(info, formula.body, inner)
        return
    if isinstance(formula, PredCall):
        if formula.name not in info.preds:
            raise ResolutionError(f"unknown predicate {formula.name!r}", formula.pos)
        _check_call_args(info, info.preds[formula.name].params, formula.args, env, formula)
        return
    if isinstance(formula, Block):
        for inner_formula in formula.formulas:
            check_formula(info, inner_formula, env)
        return
    raise AlloyTypeError(f"cannot check formula {formula!r}", formula.pos)
