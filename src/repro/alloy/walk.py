"""Generic AST traversal and rewriting utilities.

Nodes are addressed by *paths*: tuples of ``(field_name, index)`` steps from a
root node, where ``index`` is ``None`` for scalar fields and an integer for
list fields.  Paths survive pretty-print/re-parse round trips of an unchanged
tree, which lets fault localization, mutation, and repair tools name and
rewrite arbitrary subtrees without bespoke visitors.
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Callable, Iterator

from repro.alloy.nodes import Node

Path = tuple[tuple[str, int | None], ...]
"""A structural address of a node below some root."""


def iter_paths(root: Node) -> Iterator[tuple[Path, Node]]:
    """Yield ``(path, node)`` for the root and every descendant, pre-order."""
    yield (), root
    for step, child in _child_steps(root):
        for sub_path, node in iter_paths(child):
            yield (step,) + sub_path, node


def _child_steps(node: Node) -> Iterator[tuple[tuple[str, int | None], Node]]:
    for f in dataclasses.fields(node):
        value = getattr(node, f.name)
        if isinstance(value, Node):
            yield (f.name, None), value
        elif isinstance(value, list):
            for index, item in enumerate(value):
                if isinstance(item, Node):
                    yield (f.name, index), item


def get_at(root: Node, path: Path) -> Node:
    """Return the node addressed by ``path`` below ``root``."""
    node: Node = root
    for field_name, index in path:
        value = getattr(node, field_name)
        node = value if index is None else value[index]
    return node


def _shallow_node(node: Node) -> Node:
    """A one-level copy of ``node``: fresh object, fresh list containers,
    shared child subtrees."""
    fields = {
        f.name: getattr(node, f.name) for f in dataclasses.fields(node)
    }
    for name, value in fields.items():
        if isinstance(value, list):
            fields[name] = list(value)
    return type(node)(**fields)


def _copy_spine(root: Node, path: Path) -> tuple[Node, Node]:
    """Copy the nodes along ``path`` (exclusive of its last step), sharing
    every subtree off the path.  Returns ``(new_root, parent_copy)``.

    Rewrites built on this are persistent-data-structure updates: the result
    shares all untouched paragraphs with ``root``, so producing hundreds of
    candidate mutants costs O(depth) copies each instead of a full deep copy
    — and downstream identity-keyed caches (translation fragments, paragraph
    digests) see unchanged subtrees as the *same* objects.  Callers must
    treat ASTs as immutable, which every consumer in this codebase does.
    """
    new_root = _shallow_node(root)
    parent = new_root
    for field_name, index in path[:-1]:
        value = getattr(parent, field_name)
        child = value if index is None else value[index]
        fresh = _shallow_node(child)
        if index is None:
            setattr(parent, field_name, fresh)
        else:
            value[index] = fresh
        parent = fresh
    return new_root, parent


def replace_at(root: Node, path: Path, replacement: Node) -> Node:
    """Return a copy of ``root`` with the node at ``path`` replaced.

    The copy shares every subtree not on the path with ``root``; the
    replacement itself is deep-copied (proposals may embed pieces of the
    original tree)."""
    if not path:
        return copy.deepcopy(replacement)
    new_root, parent = _copy_spine(root, path)
    field_name, index = path[-1]
    if index is None:
        setattr(parent, field_name, copy.deepcopy(replacement))
    else:
        getattr(parent, field_name)[index] = copy.deepcopy(replacement)
    return new_root


def remove_at(root: Node, path: Path) -> Node:
    """Return a copy of ``root`` with the list element at ``path`` removed.

    The addressed node must live in a list field (e.g. a formula inside a
    block); removing a scalar child would leave the parent malformed.
    Unaffected subtrees are shared with ``root``.
    """
    if not path:
        raise ValueError("cannot remove the root node")
    field_name, index = path[-1]
    if index is None:
        raise ValueError(f"node at field {field_name!r} is not a list element")
    new_root, parent = _copy_spine(root, path)
    del getattr(parent, field_name)[index]
    return new_root


def insert_at(root: Node, path: Path, index: int, new_node: Node, field_name: str) -> Node:
    """Return a copy of ``root`` with ``new_node`` inserted into the list
    field ``field_name`` of the node at ``path``, at position ``index``.
    Unaffected subtrees are shared with ``root``."""
    new_root, parent = _copy_spine(root, path + ((field_name, None),))
    getattr(parent, field_name).insert(index, copy.deepcopy(new_node))
    return new_root


def count_nodes(root: Node) -> int:
    """Total number of nodes in the tree rooted at ``root``."""
    return sum(1 for _ in root.walk())


def find_paths(root: Node, predicate: Callable[[Node], bool]) -> list[Path]:
    """All paths whose node satisfies ``predicate``, pre-order."""
    return [path for path, node in iter_paths(root) if predicate(node)]
