"""Pretty-printer for the Alloy dialect AST.

Produces canonical source text that round-trips through the parser.  Repair
tools use this both to materialize candidate patches as text (for the TM
metric) and to embed specifications in LLM prompts.
"""

from __future__ import annotations

from repro.alloy.nodes import (
    ArrowType,
    AssertDecl,
    BinaryExpr,
    BinOp,
    Block,
    BoolBin,
    CardExpr,
    Command,
    Compare,
    Comprehension,
    Decl,
    DeclType,
    Expr,
    FactDecl,
    FieldDecl,
    Formula,
    FunCall,
    FunDecl,
    IdenExpr,
    ImpliesElse,
    IntLit,
    Let,
    LogicOp,
    Module,
    Mult,
    MultTest,
    NameExpr,
    NoneExpr,
    Not,
    Paragraph,
    PredCall,
    PredDecl,
    Quantified,
    SigDecl,
    UnaryExpr,
    UnaryType,
    UnivExpr,
)

_BIN_TEXT = {
    BinOp.UNION: "+",
    BinOp.DIFF: "-",
    BinOp.INTERSECT: "&",
    BinOp.JOIN: ".",
    BinOp.PRODUCT: "->",
    BinOp.OVERRIDE: "++",
    BinOp.DOM_RESTRICT: "<:",
    BinOp.RAN_RESTRICT: ":>",
}

_LOGIC_TEXT = {
    LogicOp.AND: "and",
    LogicOp.OR: "or",
    LogicOp.IMPLIES: "implies",
    LogicOp.IFF: "iff",
}

# Binding strength for expression printing (higher binds tighter).
_EXPR_PREC = {
    BinOp.UNION: 1,
    BinOp.DIFF: 1,
    BinOp.OVERRIDE: 3,
    BinOp.INTERSECT: 4,
    BinOp.PRODUCT: 5,
    BinOp.DOM_RESTRICT: 6,
    BinOp.RAN_RESTRICT: 6,
    BinOp.JOIN: 8,
}

_LOGIC_PREC = {
    LogicOp.OR: 1,
    LogicOp.IFF: 2,
    LogicOp.IMPLIES: 3,
    LogicOp.AND: 4,
}


def print_expr(expr: Expr, parent_prec: int = 0) -> str:
    """Render an expression as source text."""
    if isinstance(expr, NameExpr):
        return f"@{expr.name}" if expr.raw else expr.name
    if isinstance(expr, NoneExpr):
        return "none"
    if isinstance(expr, UnivExpr):
        return "univ"
    if isinstance(expr, IdenExpr):
        return "iden"
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, UnaryExpr):
        inner = print_expr(expr.operand, 9)
        return f"{expr.op.value}{inner}"
    if isinstance(expr, CardExpr):
        text = f"#{print_expr(expr.operand, 3)}"
        return f"({text})" if parent_prec > 2 else text
    if isinstance(expr, BinaryExpr):
        prec = _EXPR_PREC[expr.op]
        left = print_expr(expr.left, prec)
        # Product is right-associative; everything else left-associative.
        right_prec = prec if expr.op is BinOp.PRODUCT else prec + 1
        right = print_expr(expr.right, right_prec)
        op = _BIN_TEXT[expr.op]
        if expr.op is BinOp.JOIN:
            text = f"{left}.{right}"
        else:
            text = f"{left} {op} {right}"
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, FunCall):
        args = ", ".join(print_expr(a) for a in expr.args)
        return f"{expr.name}[{args}]"
    if isinstance(expr, Comprehension):
        decls = ", ".join(print_decl(d) for d in expr.decls)
        return f"{{ {decls} | {print_formula(expr.body)} }}"
    raise TypeError(f"cannot print expression {expr!r}")


def print_decl(decl: Decl) -> str:
    """Render a declaration such as ``x, y: set e``."""
    names = ", ".join(decl.names)
    prefix = "disj " if decl.disj else ""
    mult = f"{decl.mult.value} " if decl.mult is not None else ""
    return f"{prefix}{names}: {mult}{print_expr(decl.bound)}"


def print_formula(formula: Formula, parent_prec: int = 0) -> str:
    """Render a formula as source text."""
    if isinstance(formula, Compare):
        left = print_expr(formula.left)
        right = print_expr(formula.right)
        text = f"{left} {formula.op.value} {right}"
        return f"({text})" if parent_prec > 5 else text
    if isinstance(formula, MultTest):
        text = f"{formula.mult.value} {print_expr(formula.operand)}"
        return f"({text})" if parent_prec > 5 else text
    if isinstance(formula, Not):
        return f"not {print_formula(formula.operand, 6)}"
    if isinstance(formula, BoolBin):
        prec = _LOGIC_PREC[formula.op]
        if formula.op is LogicOp.IMPLIES:
            # Right-associative: the left operand needs parentheses at equal
            # precedence, the right does not.
            left = print_formula(formula.left, prec + 1)
            right = print_formula(formula.right, prec)
        else:
            left = print_formula(formula.left, prec)
            right = print_formula(formula.right, prec + 1)
        text = f"{left} {_LOGIC_TEXT[formula.op]} {right}"
        return f"({text})" if prec < parent_prec else text
    if isinstance(formula, ImpliesElse):
        cond = print_formula(formula.cond, 4)
        then = print_formula(formula.then, 4)
        other = print_formula(formula.other, 4)
        text = f"{cond} implies {then} else {other}"
        return f"({text})" if parent_prec > 3 else text
    if isinstance(formula, Quantified):
        decls = ", ".join(print_decl(d) for d in formula.decls)
        text = f"{formula.quant.value} {decls} | {print_formula(formula.body)}"
        return f"({text})" if parent_prec > 0 else text
    if isinstance(formula, Let):
        text = (
            f"let {formula.name} = {print_expr(formula.value)} | "
            f"{print_formula(formula.body)}"
        )
        return f"({text})" if parent_prec > 0 else text
    if isinstance(formula, PredCall):
        if not formula.args:
            return formula.name
        args = ", ".join(print_expr(a) for a in formula.args)
        return f"{formula.name}[{args}]"
    if isinstance(formula, Block):
        if len(formula.formulas) == 1:
            return print_formula(formula.formulas[0], parent_prec)
        inner = " ".join(print_formula(f) for f in formula.formulas)
        return f"{{ {inner} }}"
    raise TypeError(f"cannot print formula {formula!r}")


def print_decl_type(decl_type: DeclType) -> str:
    """Render a declared field type."""
    if isinstance(decl_type, UnaryType):
        return f"{decl_type.mult.value} {print_expr(decl_type.expr)}"
    if isinstance(decl_type, ArrowType):
        left = _print_arrow_side(decl_type.left)
        right = _print_arrow_side(decl_type.right)
        left_mult = (
            "" if decl_type.left_mult is Mult.SET else f" {decl_type.left_mult.value}"
        )
        right_mult = (
            "" if decl_type.right_mult is Mult.SET else f"{decl_type.right_mult.value} "
        )
        return f"{left}{left_mult} -> {right_mult}{right}"
    raise TypeError(f"cannot print decl type {decl_type!r}")


def _print_arrow_side(side: DeclType) -> str:
    if isinstance(side, UnaryType):
        return print_expr(side.expr)
    return print_decl_type(side)


def _print_block_lines(block: Block, indent: str) -> list[str]:
    return [f"{indent}{print_formula(f)}" for f in block.formulas]


def print_paragraph(paragraph: Paragraph) -> str:
    """Render a top-level paragraph."""
    if isinstance(paragraph, SigDecl):
        parts = []
        if paragraph.abstract:
            parts.append("abstract")
        if paragraph.mult is not None:
            parts.append(paragraph.mult.value)
        parts.append("sig")
        parts.append(", ".join(paragraph.names))
        if paragraph.parent is not None:
            parts.append(f"extends {paragraph.parent}")
        header = " ".join(parts)
        appended = ""
        if paragraph.appended is not None:
            inner = " ".join(print_formula(f) for f in paragraph.appended.formulas)
            appended = f" {{ {inner} }}"
        if not paragraph.fields:
            return f"{header} {{}}{appended}"
        fields = ",\n".join(
            f"  {f.name}: {print_decl_type(f.type)}" for f in paragraph.fields
        )
        return f"{header} {{\n{fields}\n}}{appended}"
    if isinstance(paragraph, FactDecl):
        name = f" {paragraph.name}" if paragraph.name else ""
        body = "\n".join(_print_block_lines(paragraph.body, "  "))
        return f"fact{name} {{\n{body}\n}}"
    if isinstance(paragraph, PredDecl):
        params = ""
        if paragraph.params:
            params = "[" + ", ".join(print_decl(d) for d in paragraph.params) + "]"
        body = "\n".join(_print_block_lines(paragraph.body, "  "))
        return f"pred {paragraph.name}{params} {{\n{body}\n}}"
    if isinstance(paragraph, FunDecl):
        params = ""
        if paragraph.params:
            params = "[" + ", ".join(print_decl(d) for d in paragraph.params) + "]"
        result = print_decl_type(paragraph.result)
        return (
            f"fun {paragraph.name}{params}: {result} {{\n"
            f"  {print_expr(paragraph.body)}\n}}"
        )
    if isinstance(paragraph, AssertDecl):
        body = "\n".join(_print_block_lines(paragraph.body, "  "))
        return f"assert {paragraph.name} {{\n{body}\n}}"
    if isinstance(paragraph, Command):
        if paragraph.target is not None:
            head = f"{paragraph.kind} {paragraph.target}"
        else:
            inner = " ".join(print_formula(f) for f in paragraph.block.formulas)
            head = f"{paragraph.kind} {{ {inner} }}"
        scope = f" for {paragraph.default_scope}"
        if paragraph.sig_scopes:
            buts = ", ".join(
                f"{'exactly ' if s.exact else ''}{s.bound} {s.sig}"
                for s in paragraph.sig_scopes
            )
            scope += f" but {buts}"
        expect = f" expect {paragraph.expect}" if paragraph.expect is not None else ""
        return f"{head}{scope}{expect}"
    raise TypeError(f"cannot print paragraph {paragraph!r}")


def print_module(module: Module) -> str:
    """Render a complete specification as canonical source text."""
    lines: list[str] = []
    if module.name:
        lines.append(f"module {module.name}")
        lines.append("")
    for paragraph in module.paragraphs:
        lines.append(print_paragraph(paragraph))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
