"""Error types raised by the Alloy dialect front end.

Every error carries a source position (line, column) so that repair tools
and the response parsers can report precise locations, mirroring the error
reporting of the real Alloy Analyzer.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourcePos:
    """A position in a specification source text (1-based line/column)."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"line {self.line}, column {self.column}"


class AlloyError(Exception):
    """Base class for all errors produced by the Alloy front end."""

    def __init__(self, message: str, pos: SourcePos | None = None) -> None:
        self.message = message
        self.pos = pos
        if pos is not None:
            super().__init__(f"{message} ({pos})")
        else:
            super().__init__(message)


class LexError(AlloyError):
    """Raised when the lexer encounters an unrecognized character."""


class ParseError(AlloyError):
    """Raised when the parser encounters an unexpected token."""


class ResolutionError(AlloyError):
    """Raised when a name cannot be resolved or is declared twice."""


class AlloyTypeError(AlloyError):
    """Raised when an expression is used at an incompatible arity/type."""


class EvaluationError(AlloyError):
    """Raised when an expression cannot be evaluated against an instance."""


class ScopeError(AlloyError):
    """Raised when command bounds are inconsistent or unsatisfiable."""


class AnalysisBudgetError(AlloyError):
    """Raised when a solver call exceeds its conflict budget.

    The real Alloy Analyzer enforces wall-clock timeouts; this repository
    uses a deterministic conflict limit instead so runs are reproducible.
    Repair tools treat a budget overrun like any other analysis failure for
    the candidate at hand.
    """
