"""Token definitions for the Alloy dialect lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.alloy.errors import SourcePos


class TokenKind(enum.Enum):
    """The lexical categories recognized by the lexer."""

    IDENT = "identifier"
    NUMBER = "number"

    # Keywords.
    ABSTRACT = "abstract"
    ALL = "all"
    AND = "and"
    ASSERT = "assert"
    BUT = "but"
    CHECK = "check"
    DISJ = "disj"
    ELSE = "else"
    EXACTLY = "exactly"
    EXTENDS = "extends"
    FACT = "fact"
    FOR = "for"
    FUN = "fun"
    IDEN = "iden"
    IFF = "iff"
    IMPLIES = "implies"
    IN = "in"
    INT = "Int"
    LET = "let"
    LONE = "lone"
    MODULE = "module"
    NO = "no"
    NONE = "none"
    NOT = "not"
    ONE = "one"
    OR = "or"
    PRED = "pred"
    RUN = "run"
    SET = "set"
    SIG = "sig"
    SOME = "some"
    UNIV = "univ"
    EXPECT = "expect"

    # Punctuation and operators.
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    COLON = ":"
    DOT = "."
    AT = "@"
    PLUS = "+"
    MINUS = "-"
    AMP = "&"
    ARROW = "->"
    PLUSPLUS = "++"
    TILDE = "~"
    CARET = "^"
    STAR = "*"
    HASH = "#"
    BAR = "|"
    EQ = "="
    NEQ = "!="
    LT = "<"
    GT = ">"
    LTE = "<="
    GTE = ">="
    NOT_IN = "!in"
    NOT_EQ_ALT = "not="
    BANG = "!"
    AMPAMP = "&&"
    BARBAR = "||"
    IMPLIES_OP = "=>"
    IFF_OP = "<=>"
    DOM_RESTRICT = "<:"
    RAN_RESTRICT = ":>"
    EOF = "<eof>"


KEYWORDS: dict[str, TokenKind] = {
    "abstract": TokenKind.ABSTRACT,
    "all": TokenKind.ALL,
    "and": TokenKind.AND,
    "assert": TokenKind.ASSERT,
    "but": TokenKind.BUT,
    "check": TokenKind.CHECK,
    "disj": TokenKind.DISJ,
    "else": TokenKind.ELSE,
    "exactly": TokenKind.EXACTLY,
    "extends": TokenKind.EXTENDS,
    "fact": TokenKind.FACT,
    "for": TokenKind.FOR,
    "fun": TokenKind.FUN,
    "iden": TokenKind.IDEN,
    "iff": TokenKind.IFF,
    "implies": TokenKind.IMPLIES,
    "in": TokenKind.IN,
    "Int": TokenKind.INT,
    "let": TokenKind.LET,
    "lone": TokenKind.LONE,
    "module": TokenKind.MODULE,
    "no": TokenKind.NO,
    "none": TokenKind.NONE,
    "not": TokenKind.NOT,
    "one": TokenKind.ONE,
    "or": TokenKind.OR,
    "pred": TokenKind.PRED,
    "run": TokenKind.RUN,
    "set": TokenKind.SET,
    "sig": TokenKind.SIG,
    "some": TokenKind.SOME,
    "univ": TokenKind.UNIV,
    "expect": TokenKind.EXPECT,
}


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    kind: TokenKind
    text: str
    pos: SourcePos

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})@{self.pos}"
