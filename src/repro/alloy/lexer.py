"""Hand-written lexer for the Alloy dialect.

Supports line comments (``//`` and ``--``) and block comments (``/* ... */``),
multi-character operators, decimal integer literals, and identifiers that may
contain primes (``'``) — matching the surface syntax used by the benchmark
specifications in this repository.
"""

from __future__ import annotations

from repro.alloy.errors import LexError, SourcePos
from repro.alloy.tokens import KEYWORDS, Token, TokenKind

# Multi-character operators, longest first so maximal munch works.
_MULTI_OPERATORS: list[tuple[str, TokenKind]] = [
    ("<=>", TokenKind.IFF_OP),
    ("!in", TokenKind.NOT_IN),
    ("++", TokenKind.PLUSPLUS),
    ("->", TokenKind.ARROW),
    ("=>", TokenKind.IMPLIES_OP),
    ("&&", TokenKind.AMPAMP),
    ("||", TokenKind.BARBAR),
    ("!=", TokenKind.NEQ),
    ("<:", TokenKind.DOM_RESTRICT),
    (":>", TokenKind.RAN_RESTRICT),
    ("<=", TokenKind.LTE),
    (">=", TokenKind.GTE),
    ("=<", TokenKind.LTE),
]

_SINGLE_OPERATORS: dict[str, TokenKind] = {
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ",": TokenKind.COMMA,
    ":": TokenKind.COLON,
    ".": TokenKind.DOT,
    "@": TokenKind.AT,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "&": TokenKind.AMP,
    "~": TokenKind.TILDE,
    "^": TokenKind.CARET,
    "*": TokenKind.STAR,
    "#": TokenKind.HASH,
    "|": TokenKind.BAR,
    "=": TokenKind.EQ,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "!": TokenKind.BANG,
}


class Lexer:
    """Converts a source string into a token stream."""

    def __init__(self, source: str) -> None:
        self._source = source
        self._index = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> list[Token]:
        """Lex the whole input, returning tokens terminated by an EOF token."""
        tokens: list[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    def _pos(self) -> SourcePos:
        return SourcePos(self._line, self._column)

    def _peek(self, offset: int = 0) -> str:
        index = self._index + offset
        if index >= len(self._source):
            return ""
        return self._source[index]

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._index >= len(self._source):
                return
            if self._source[self._index] == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
            self._index += 1

    def _skip_trivia(self) -> None:
        while self._index < len(self._source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                self._skip_line_comment()
            elif char == "-" and self._peek(1) == "-":
                self._skip_line_comment()
            elif char == "/" and self._peek(1) == "*":
                self._skip_block_comment()
            else:
                return

    def _skip_line_comment(self) -> None:
        while self._index < len(self._source) and self._peek() != "\n":
            self._advance()

    def _skip_block_comment(self) -> None:
        start = self._pos()
        self._advance(2)
        while self._index < len(self._source):
            if self._peek() == "*" and self._peek(1) == "/":
                self._advance(2)
                return

            self._advance()
        raise LexError("unterminated block comment", start)

    def _next_token(self) -> Token:
        self._skip_trivia()
        pos = self._pos()
        if self._index >= len(self._source):
            return Token(TokenKind.EOF, "", pos)

        char = self._peek()
        if char.isalpha() or char == "_":
            return self._lex_word(pos)
        if char.isdigit():
            return self._lex_number(pos)

        for text, kind in _MULTI_OPERATORS:
            if self._source.startswith(text, self._index):
                self._advance(len(text))
                return Token(kind, text, pos)

        kind = _SINGLE_OPERATORS.get(char)
        if kind is not None:
            self._advance()
            return Token(kind, char, pos)

        raise LexError(f"unexpected character {char!r}", pos)

    def _lex_word(self, pos: SourcePos) -> Token:
        start = self._index
        while self._index < len(self._source):
            char = self._peek()
            if char.isalnum() or char in "_'":
                self._advance()
            else:
                break
        text = self._source[start : self._index]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, pos)

    def _lex_number(self, pos: SourcePos) -> Token:
        start = self._index
        while self._index < len(self._source) and self._peek().isdigit():
            self._advance()
        return Token(TokenKind.NUMBER, self._source[start : self._index], pos)


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source).tokenize()
