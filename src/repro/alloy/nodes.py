"""AST node definitions for the Alloy dialect.

All nodes derive from :class:`Node` and carry a source position.  Child
traversal is generic: any field whose value is a ``Node`` (or a list of
``Node``) is a child, which lets the repair machinery walk, locate, and
rewrite arbitrary subtrees without per-class visitors.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import Iterator

from repro.alloy.errors import SourcePos

_DEFAULT_POS = SourcePos(0, 0)


@dataclass
class Node:
    """Base class for every AST node."""

    pos: SourcePos = field(default=_DEFAULT_POS, compare=False, kw_only=True)

    def children(self) -> Iterator["Node"]:
        """Yield every direct child node, in field order."""
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, Node):
                        yield item

    def walk(self) -> Iterator["Node"]:
        """Yield this node and every descendant, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


# ---------------------------------------------------------------------------
# Operators and multiplicities
# ---------------------------------------------------------------------------


class Mult(enum.Enum):
    """Multiplicity keywords used in declarations and formulas."""

    SET = "set"
    ONE = "one"
    LONE = "lone"
    SOME = "some"
    NO = "no"


class UnOp(enum.Enum):
    """Unary relational operators."""

    TRANSPOSE = "~"
    CLOSURE = "^"
    RCLOSURE = "*"


class BinOp(enum.Enum):
    """Binary relational (and integer) operators."""

    UNION = "+"
    DIFF = "-"
    INTERSECT = "&"
    JOIN = "."
    PRODUCT = "->"
    OVERRIDE = "++"
    DOM_RESTRICT = "<:"
    RAN_RESTRICT = ":>"


class CmpOp(enum.Enum):
    """Comparison operators that form atomic formulas."""

    IN = "in"
    NOT_IN = "!in"
    EQ = "="
    NEQ = "!="
    LT = "<"
    LTE = "<="
    GT = ">"
    GTE = ">="


class LogicOp(enum.Enum):
    """Binary logical connectives."""

    AND = "and"
    OR = "or"
    IMPLIES = "implies"
    IFF = "iff"


class Quant(enum.Enum):
    """Quantifiers."""

    ALL = "all"
    SOME = "some"
    NO = "no"
    LONE = "lone"
    ONE = "one"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for relational and integer expressions."""


@dataclass
class NameExpr(Expr):
    """A reference to a signature, field, variable, or zero-arg function.

    ``raw`` marks an ``@name`` reference: inside an appended signature fact
    it suppresses the implicit ``this.`` receiver join (Alloy's escape)."""

    name: str = ""
    raw: bool = False


@dataclass
class NoneExpr(Expr):
    """The empty unary relation ``none``."""


@dataclass
class UnivExpr(Expr):
    """The universal unary relation ``univ``."""


@dataclass
class IdenExpr(Expr):
    """The binary identity relation ``iden``."""


@dataclass
class IntLit(Expr):
    """An integer literal."""

    value: int = 0


@dataclass
class UnaryExpr(Expr):
    """``~e``, ``^e``, or ``*e``."""

    op: UnOp = UnOp.TRANSPOSE
    operand: Expr = field(default_factory=NoneExpr)


@dataclass
class BinaryExpr(Expr):
    """A binary relational expression such as ``a + b`` or ``a.b``."""

    op: BinOp = BinOp.UNION
    left: Expr = field(default_factory=NoneExpr)
    right: Expr = field(default_factory=NoneExpr)


@dataclass
class CardExpr(Expr):
    """The integer-valued cardinality expression ``#e``."""

    operand: Expr = field(default_factory=NoneExpr)


@dataclass
class FunCall(Expr):
    """An application of a user-defined function, ``f[a, b]``."""

    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class Decl(Node):
    """A declaration ``x, y: mult expr`` used by quantifiers and params."""

    names: list[str] = field(default_factory=list)
    bound: Expr = field(default_factory=NoneExpr)
    mult: Mult | None = None
    disj: bool = False


@dataclass
class Comprehension(Expr):
    """A set comprehension ``{ x: e | f }``."""

    decls: list[Decl] = field(default_factory=list)
    body: "Formula" = None  # type: ignore[assignment]


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------


@dataclass
class Formula(Node):
    """Base class for formulas."""


@dataclass
class Compare(Formula):
    """An atomic comparison formula such as ``a in b`` or ``#x < 3``."""

    op: CmpOp = CmpOp.IN
    left: Expr = field(default_factory=NoneExpr)
    right: Expr = field(default_factory=NoneExpr)


@dataclass
class MultTest(Formula):
    """A multiplicity formula such as ``some e`` or ``no e``."""

    mult: Mult = Mult.SOME
    operand: Expr = field(default_factory=NoneExpr)


@dataclass
class Not(Formula):
    """Logical negation."""

    operand: Formula = None  # type: ignore[assignment]


@dataclass
class BoolBin(Formula):
    """A binary logical connective."""

    op: LogicOp = LogicOp.AND
    left: Formula = None  # type: ignore[assignment]
    right: Formula = None  # type: ignore[assignment]


@dataclass
class ImpliesElse(Formula):
    """``cond implies then else other``."""

    cond: Formula = None  # type: ignore[assignment]
    then: Formula = None  # type: ignore[assignment]
    other: Formula = None  # type: ignore[assignment]


@dataclass
class Quantified(Formula):
    """A quantified formula ``all x: e | f``."""

    quant: Quant = Quant.ALL
    decls: list[Decl] = field(default_factory=list)
    body: Formula = None  # type: ignore[assignment]


@dataclass
class Let(Formula):
    """``let x = e | f`` (formula-valued)."""

    name: str = ""
    value: Expr = field(default_factory=NoneExpr)
    body: Formula = None  # type: ignore[assignment]


@dataclass
class PredCall(Formula):
    """An application of a named predicate, ``p[a, b]`` or bare ``p``."""

    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class Block(Formula):
    """A brace-delimited conjunction of formulas."""

    formulas: list[Formula] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Declared field types (right-hand sides of field declarations)
# ---------------------------------------------------------------------------


@dataclass
class DeclType(Node):
    """Base class for declared field types."""


@dataclass
class UnaryType(DeclType):
    """A unary field type with a multiplicity, e.g. ``set Key``."""

    mult: Mult = Mult.ONE
    expr: Expr = field(default_factory=NoneExpr)


@dataclass
class ArrowType(DeclType):
    """A (possibly nested) arrow field type, e.g. ``Room -> lone RoomKey``."""

    left: DeclType = None  # type: ignore[assignment]
    right: DeclType = None  # type: ignore[assignment]
    left_mult: Mult = Mult.SET
    right_mult: Mult = Mult.SET


@dataclass
class FieldDecl(Node):
    """A field declaration inside a signature body."""

    name: str = ""
    type: DeclType = None  # type: ignore[assignment]


# ---------------------------------------------------------------------------
# Paragraphs
# ---------------------------------------------------------------------------


@dataclass
class Paragraph(Node):
    """Base class for top-level module paragraphs."""


@dataclass
class SigDecl(Paragraph):
    """A signature declaration."""

    names: list[str] = field(default_factory=list)
    fields: list[FieldDecl] = field(default_factory=list)
    parent: str | None = None
    abstract: bool = False
    mult: Mult | None = None
    appended: Block | None = None
    """An appended signature fact: ``sig S { ... } { constraints }``.

    Inside it, ``this`` denotes the implicit receiver and bare references to
    the signature's own fields mean ``this.field`` (Alloy's desugaring)."""


@dataclass
class FactDecl(Paragraph):
    """A fact paragraph."""

    name: str | None = None
    body: Block = field(default_factory=Block)


@dataclass
class PredDecl(Paragraph):
    """A predicate paragraph."""

    name: str = ""
    params: list[Decl] = field(default_factory=list)
    body: Block = field(default_factory=Block)


@dataclass
class FunDecl(Paragraph):
    """A function paragraph."""

    name: str = ""
    params: list[Decl] = field(default_factory=list)
    result: DeclType = None  # type: ignore[assignment]
    body: Expr = field(default_factory=NoneExpr)


@dataclass
class AssertDecl(Paragraph):
    """An assertion paragraph."""

    name: str = ""
    body: Block = field(default_factory=Block)


@dataclass
class SigScope(Node):
    """A per-signature scope bound in a command, e.g. ``exactly 3 Room``."""

    sig: str = ""
    bound: int = 0
    exact: bool = False


@dataclass
class Command(Paragraph):
    """A ``run`` or ``check`` command."""

    kind: str = "run"  # "run" or "check"
    target: str | None = None
    block: Block | None = None
    default_scope: int = 3
    sig_scopes: list[SigScope] = field(default_factory=list)
    expect: int | None = None
    label: str | None = None


@dataclass
class Module(Node):
    """A complete specification: an optional module name plus paragraphs."""

    name: str | None = None
    paragraphs: list[Paragraph] = field(default_factory=list)

    @property
    def sigs(self) -> list[SigDecl]:
        return [p for p in self.paragraphs if isinstance(p, SigDecl)]

    @property
    def facts(self) -> list[FactDecl]:
        return [p for p in self.paragraphs if isinstance(p, FactDecl)]

    @property
    def preds(self) -> list[PredDecl]:
        return [p for p in self.paragraphs if isinstance(p, PredDecl)]

    @property
    def funs(self) -> list[FunDecl]:
        return [p for p in self.paragraphs if isinstance(p, FunDecl)]

    @property
    def asserts(self) -> list[AssertDecl]:
        return [p for p in self.paragraphs if isinstance(p, AssertDecl)]

    @property
    def commands(self) -> list[Command]:
        return [p for p in self.paragraphs if isinstance(p, Command)]
