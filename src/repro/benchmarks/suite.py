"""Benchmark suite builders: ARepair-38 and Alloy4Fun-1936.

Suites are generated deterministically from the ground-truth model corpus by
seeded fault injection, matching the published per-domain/per-problem spec
counts.  Because generation is solver-heavy, suites are cached on disk as
JSON (see :mod:`repro.benchmarks.cache`).
"""

from __future__ import annotations

from repro.benchmarks.faults import FaultInjector, FaultySpec, InjectionConfig
from repro.benchmarks.models.registry import all_models, models_for_domain

ALLOY4FUN_COUNTS: dict[str, int] = {
    "classroom": 999,
    "cv": 138,
    "graphs": 283,
    "lts": 249,
    "production": 61,
    "trash": 206,
}
"""Per-domain spec counts of the Alloy4Fun benchmark (paper Table I)."""

AREPAIR_COUNTS: dict[str, int] = {
    "addr": 1,
    "arr": 2,
    "balancedBSt": 3,
    "bempl": 1,
    "cd": 2,
    "ctree": 1,
    "dll": 4,
    "farmer": 1,
    "fsm": 2,
    "grade": 1,
    "other": 1,
    "Student": 19,
}
"""Per-problem spec counts of the ARepair benchmark (paper Table I)."""

ALLOY4FUN_CONFIG = InjectionConfig(
    depth_weights={1: 0.50, 2: 0.35, 3: 0.15},
    vague_hint_rate=0.22,
    misleading_hint_rate=0.40,
    removal_bias=0.45,
)
"""Alloy4Fun faults are novice submissions: "simple faults amendable by
adjusting a single operator" up to "intricate defects necessitating the
synthesis of new expressions or the substitution of entire predicate bodies"
(§III-C).  The removal bias injects the synthesis class; the fix comments
attached to novice submissions are frequently vague or misleading (which is
what makes Loc outperform Loc+Fix on this benchmark)."""

AREPAIR_CONFIG = InjectionConfig(
    depth_weights={1: 0.5, 2: 0.35, 3: 0.15},
    vague_hint_rate=0.10,
    misleading_hint_rate=0.05,
)
"""ARepair-benchmark faults range from simple to intricate, and the fix
comments (written by the tool authors) are mostly accurate."""


def build_alloy4fun(
    seed: int = 0, counts: dict[str, int] | None = None
) -> list[FaultySpec]:
    """Generate the Alloy4Fun-style benchmark."""
    return _build("alloy4fun", counts or ALLOY4FUN_COUNTS, ALLOY4FUN_CONFIG, seed)


def build_arepair(
    seed: int = 0, counts: dict[str, int] | None = None
) -> list[FaultySpec]:
    """Generate the ARepair-style benchmark."""
    return _build("arepair", counts or AREPAIR_COUNTS, AREPAIR_CONFIG, seed)


def _build(
    benchmark: str,
    counts: dict[str, int],
    config: InjectionConfig,
    seed: int,
) -> list[FaultySpec]:
    specs: list[FaultySpec] = []
    for domain, count in counts.items():
        models = models_for_domain(benchmark, domain)
        if not models:
            raise ValueError(f"no models registered for {benchmark}/{domain}")
        shares = _split_evenly(count, len(models))
        for model, share in zip(models, shares):
            if share == 0:
                continue
            injector = FaultInjector(
                model_name=model.name,
                benchmark=benchmark,
                domain=domain,
                truth_source=model.source,
                config=config,
                seed=seed ^ _stable_hash(model.name),
            )
            specs.extend(injector.generate(share))
    return specs


def scaled_counts(counts: dict[str, int], scale: float) -> dict[str, int]:
    """Proportionally shrink per-domain counts (at least 1 per domain)."""
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    return {
        domain: max(1, round(count * scale)) for domain, count in counts.items()
    }


def _split_evenly(total: int, buckets: int) -> list[int]:
    base = total // buckets
    remainder = total % buckets
    return [base + (1 if i < remainder else 0) for i in range(buckets)]


def _stable_hash(text: str) -> int:
    import hashlib

    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:4], "big")


def validate_corpus() -> list[str]:
    """Check every registered ground-truth model against its expectations.

    Returns a list of problems (empty = corpus is sound); used by the test
    suite and by benchmark generation as a precondition."""
    from repro.analyzer.analyzer import Analyzer

    problems: list[str] = []
    for model in all_models():
        try:
            analyzer = Analyzer(model.source)
        except Exception as error:  # noqa: BLE001 - report all corpus defects
            problems.append(f"{model.name}: does not analyze: {error}")
            continue
        for command in analyzer.info.commands:
            if command.expect is None:
                problems.append(
                    f"{model.name}: command {command.target!r} lacks 'expect'"
                )
                continue
            result = analyzer.run_command(command)
            if result.sat != (command.expect == 1):
                problems.append(
                    f"{model.name}: {command.kind} {command.target} is "
                    f"{'SAT' if result.sat else 'UNSAT'}, expected "
                    f"{'SAT' if command.expect == 1 else 'UNSAT'}"
                )
    return problems
