"""Disk caching of generated benchmark suites.

Generating the Alloy4Fun-scale benchmark involves tens of thousands of
solver calls, so generated suites are cached as JSON.  The cache key encodes
the benchmark name, the seed, and the requested counts, so differently
scaled suites coexist.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from pathlib import Path

from repro.benchmarks.faults import FaultySpec
from repro.runtime.errors import CacheCorruptionError
from repro.runtime.persist import atomic_write_json, load_json
from repro.benchmarks.suite import (
    ALLOY4FUN_COUNTS,
    AREPAIR_COUNTS,
    build_alloy4fun,
    build_arepair,
    scaled_counts,
)
from repro.llm.prompts import RepairHints

_CACHE_ENV = "REPRO_CACHE_DIR"

BENCHMARK_SCHEMA = "repro-benchmark/1"
"""Stamped into every cache file; bump on any format change so stale
caches read as misses instead of crashing (or silently skewing) a run."""


def cache_dir() -> Path:
    """The benchmark cache directory (override with ``REPRO_CACHE_DIR``)."""
    override = os.environ.get(_CACHE_ENV)
    if override:
        return Path(override)
    return Path.cwd() / ".repro_cache"


def _cache_key(benchmark: str, seed: int, counts: dict[str, int]) -> str:
    digest = hashlib.sha256(
        json.dumps({"b": benchmark, "s": seed, "c": counts}, sort_keys=True).encode()
    ).hexdigest()[:16]
    return f"{benchmark}-{seed}-{digest}.json"


def _to_json(spec: FaultySpec) -> dict:
    return {
        "spec_id": spec.spec_id,
        "benchmark": spec.benchmark,
        "domain": spec.domain,
        "model_name": spec.model_name,
        "faulty_source": spec.faulty_source,
        "truth_source": spec.truth_source,
        "fault_description": spec.fault_description,
        "depth": spec.depth,
        "hints": {
            "location": spec.hints.location,
            "fix_description": spec.hints.fix_description,
            "passing_assertion": spec.hints.passing_assertion,
        },
    }


def _from_json(data: dict) -> FaultySpec:
    hints = data["hints"]
    return FaultySpec(
        spec_id=data["spec_id"],
        benchmark=data["benchmark"],
        domain=data["domain"],
        model_name=data["model_name"],
        faulty_source=data["faulty_source"],
        truth_source=data["truth_source"],
        fault_description=data["fault_description"],
        depth=data["depth"],
        hints=RepairHints(
            location=hints["location"],
            fix_description=hints["fix_description"],
            passing_assertion=hints["passing_assertion"],
        ),
    )


def load_benchmark(
    benchmark: str,
    seed: int = 0,
    scale: float = 1.0,
    use_cache: bool = True,
) -> list[FaultySpec]:
    """Load (or generate and cache) a benchmark suite.

    ``scale`` proportionally shrinks the per-domain counts, which the quick
    experiment paths use; ``scale=1.0`` is the paper-sized benchmark.
    """
    if benchmark == "alloy4fun":
        counts = scaled_counts(ALLOY4FUN_COUNTS, scale)
        builder = build_alloy4fun
    elif benchmark == "arepair":
        counts = scaled_counts(AREPAIR_COUNTS, scale)
        builder = build_arepair
    else:
        raise ValueError(f"unknown benchmark {benchmark!r}")

    path = cache_dir() / _cache_key(benchmark, seed, counts)
    if use_cache and path.exists():
        try:
            return _read_cached(path)
        except CacheCorruptionError as error:
            # A truncated or stale cache is a miss, never a crash: warn,
            # discard, regenerate.
            print(
                f"warning: discarding unusable benchmark cache: {error}",
                file=sys.stderr,
            )
            try:
                path.unlink()
            except OSError:
                pass

    specs = builder(seed=seed, counts=counts)
    if use_cache:
        atomic_write_json(
            path, [_to_json(spec) for spec in specs], schema=BENCHMARK_SCHEMA
        )
    return specs


def _read_cached(path: Path) -> list[FaultySpec]:
    payload = load_json(path, schema=BENCHMARK_SCHEMA)
    try:
        return [_from_json(item) for item in payload]
    except (KeyError, TypeError) as error:
        raise CacheCorruptionError(
            f"malformed benchmark record in {path.name}: {error!r}",
            context={"path": str(path)},
        ) from error
