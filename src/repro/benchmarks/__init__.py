"""Benchmark suites: ARepair-38 and Alloy4Fun-1936 with seeded faults."""

from repro.benchmarks.cache import cache_dir, load_benchmark
from repro.benchmarks.faults import (
    FaultInjector,
    FaultySpec,
    InjectionConfig,
    describe_fix,
    describe_location,
)
from repro.benchmarks.models import all_models, domains, get_model, models_for_domain
from repro.benchmarks.stats import SuiteStats, classify_fault, render_stats, summarize
from repro.benchmarks.suite import (
    ALLOY4FUN_COUNTS,
    AREPAIR_COUNTS,
    build_alloy4fun,
    build_arepair,
    scaled_counts,
    validate_corpus,
)

__all__ = [
    "ALLOY4FUN_COUNTS",
    "AREPAIR_COUNTS",
    "FaultInjector",
    "FaultySpec",
    "InjectionConfig",
    "SuiteStats",
    "all_models",
    "build_alloy4fun",
    "build_arepair",
    "cache_dir",
    "describe_fix",
    "describe_location",
    "domains",
    "get_model",
    "load_benchmark",
    "models_for_domain",
    "classify_fault",
    "render_stats",
    "scaled_counts",
    "summarize",
    "validate_corpus",
]
