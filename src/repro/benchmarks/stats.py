"""Descriptive statistics over generated benchmark suites.

Used by the documentation and the test suite to validate that the fault mix
matches the configured taxonomy (and to render the corpus summary table in
EXPERIMENTS.md).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.benchmarks.faults import FaultySpec

# Fault taxonomy: mutation-description needle -> class label.
_FAULT_CLASSES: list[tuple[str, str]] = [
    ("quantifier", "quantifier swap"),
    ("compare", "comparison operator"),
    ("swap operands", "operand swap"),
    ("logic", "logical connective"),
    ("multiplicity", "multiplicity"),
    ("field", "field multiplicity"),
    ("negate", "negation"),
    ("drop negation", "negation"),
    ("closure", "closure misuse"),
    ("^ ->", "closure misuse"),
    ("* ->", "closure misuse"),
    ("transpose", "transpose"),
    ("drop conjunct", "missing constraint"),
    ("name ", "wrong relation"),
    ("keep ", "dropped subexpression"),
    ("operator", "set operator"),
]


def classify_fault(description: str) -> str:
    """The taxonomy class of (the first mutation of) a fault description."""
    first = description.split(";")[0]
    for needle, label in _FAULT_CLASSES:
        if needle in first:
            return label
    return "other"


@dataclass
class SuiteStats:
    """Aggregate statistics of one benchmark suite."""

    total: int
    by_domain: Counter = field(default_factory=Counter)
    by_depth: Counter = field(default_factory=Counter)
    by_class: Counter = field(default_factory=Counter)
    spec_lines_min: int = 0
    spec_lines_max: int = 0
    spec_lines_mean: float = 0.0


def summarize(specs: list[FaultySpec]) -> SuiteStats:
    """Compute the statistics of a generated suite."""
    stats = SuiteStats(total=len(specs))
    line_counts: list[int] = []
    for spec in specs:
        stats.by_domain[spec.domain] += 1
        stats.by_depth[spec.depth] += 1
        stats.by_class[classify_fault(spec.fault_description)] += 1
        line_counts.append(len(spec.faulty_source.splitlines()))
    if line_counts:
        stats.spec_lines_min = min(line_counts)
        stats.spec_lines_max = max(line_counts)
        stats.spec_lines_mean = sum(line_counts) / len(line_counts)
    return stats


def render_stats(stats: SuiteStats, title: str) -> str:
    """A text table of suite statistics."""
    lines = [f"== {title} ({stats.total} specifications) =="]
    lines.append("per domain:")
    for domain, count in sorted(stats.by_domain.items()):
        lines.append(f"  {domain:<14}{count:>6}")
    lines.append("per fault depth:")
    for depth, count in sorted(stats.by_depth.items()):
        lines.append(f"  {depth} edit(s){'':<5}{count:>6}")
    lines.append("per fault class:")
    for label, count in stats.by_class.most_common():
        lines.append(f"  {label:<22}{count:>6}")
    lines.append(
        f"spec size (lines): min={stats.spec_lines_min} "
        f"mean={stats.spec_lines_mean:.1f} max={stats.spec_lines_max}"
    )
    return "\n".join(lines)
