"""Graphs domain: directed-graph property models (acyclicity, completeness,
undirectedness) from the Alloy4Fun graph exercises."""

from repro.benchmarks.models.registry import register

GRAPHS_A = """
sig Node { adj: set Node }

fact Acyclic {
  all n: Node | n not in n.^adj
}

fact Sparse {
  all n: Node | lone n.adj
  #adj <= 3
}

pred connectedPair { some disj a, b: Node | b in a.adj }
pred pathOfTwo { some a: Node | some a.adj.adj }
fun reachable[n: Node]: set Node { n.^adj }

assert NoSelfLoop {
  all n: Node | n not in n.adj
}
assert NoCycle {
  no n: Node | n in n.^adj
}

run connectedPair for 3 expect 1
check NoSelfLoop for 3 expect 0
check NoCycle for 3 expect 0
"""

GRAPHS_B = """
sig Vertex { edges: set Vertex }

fact Undirected {
  all u: Vertex, v: Vertex | v in u.edges implies u in v.edges
  all v: Vertex | v not in v.edges
}

fact Degree {
  all v: Vertex | #v.edges <= 2
}

pred nonTrivial { some u: Vertex | some u.edges }
pred triangleFree { no u: Vertex | some u.edges.edges & u.edges }

assert Symmetric {
  edges = ~edges
}
assert Irreflexive {
  no edges & iden
}

run nonTrivial for 3 expect 1
check Symmetric for 3 expect 0
check Irreflexive for 3 expect 0
"""

GRAPHS_C = """
sig Elem { covers: set Elem }
one sig Top {}

fact PartialOrder {
  all e: Elem | e not in e.^covers
  all e: Elem, f: Elem, g: Elem | (f in e.covers and g in f.covers) implies g not in e.covers
}

fact Grounded {
  some Elem implies some e: Elem | no covers.e
}

pred chain { some e: Elem | some e.covers }
pred deepChain { some e: Elem | some e.covers.covers }

assert CoverAcyclic {
  no e: Elem | e in e.^covers
}

run chain for 3 expect 1
check CoverAcyclic for 3 expect 0
"""

register("graphs_a", "graphs", "alloy4fun", GRAPHS_A)
register("graphs_b", "graphs", "alloy4fun", GRAPHS_B)
register("graphs_c", "graphs", "alloy4fun", GRAPHS_C)
