"""CV domain: curriculum-vitae / job application models."""

from repro.benchmarks.models.registry import register

CV_A = """
sig Person { works: lone Company, skills: set Skill }
sig Company { requires: set Skill }
sig Skill {}

fact Employment {
  all p: Person | all c: p.works | c.requires in p.skills
  all c: Company | some c.requires
}

fact Market {
  all s: Skill | some requires.s or some skills.s
  some Company implies some Skill
}

pred employed { some p: Person | some p.works }
pred skillShortage { some c: Company | no worksFor[c] }
fun worksFor[c: Company]: set Person { works.c }

assert QualifiedWorkers {
  all p: Person, c: p.works | c.requires in p.skills
}
assert DemandExists {
  no c: Company | no c.requires
}

run employed for 3 expect 1
check QualifiedWorkers for 3 expect 0
check DemandExists for 3 expect 0
"""

CV_B = """
sig Applicant { applied: set Position, hired: lone Position }
sig Position { offeredBy: one Employer }
sig Employer {}

fact Hiring {
  all a: Applicant | a.hired in a.applied
  all p: Position | lone hired.p
  all a: Applicant | some a.applied implies some a.applied.offeredBy
}

pred someHire { some a: Applicant | some a.hired }
pred competition { some p: Position | some disj a1, a2: Applicant | p in a1.applied & a2.applied }

assert HiredApplied {
  all a: Applicant | a.hired in a.applied
}
assert NoDoubleFill {
  all p: Position | lone a: Applicant | p in a.hired
}

run someHire for 3 expect 1
check HiredApplied for 3 expect 0
check NoDoubleFill for 3 expect 0
"""

register("cv_a", "cv", "alloy4fun", CV_A)
register("cv_b", "cv", "alloy4fun", CV_B)
