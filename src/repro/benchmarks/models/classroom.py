"""Classroom domain: class registration models (Alloy4Fun's largest domain).

Three sub-models cover teaching assignment, tutoring hierarchies, and
group-based grading — the themes of the original Alloy4Fun "classroom"
exercises.
"""

from repro.benchmarks.models.registry import register

CLASSROOM_A = """
abstract sig Person {}
sig Student extends Person { enrolled: set Class }
sig Teacher extends Person { teaches: set Class }
sig Class {}

fact Registration {
  all c: Class | some t: Teacher | c in t.teaches
  all s: Student | some s.enrolled
  all t: Teacher | no t.enrolled
  Person = Student + Teacher
}

fact Workload {
  all t: Teacher | lone t.teaches
  some Class implies some Teacher
}

sig Enrollment {}

pred someClass { some Class and some Student }
pred overlappingEnrollment {
  some disj s1, s2: Student | some s1.enrolled & s2.enrolled
}

fun taughtBy[t: Teacher]: set Class { t.teaches }

assert EveryClassTaught {
  all c: Class | some t: Teacher | c in t.teaches
}
assert StudentsBusy {
  no s: Student | no s.enrolled
}

run someClass for 3 expect 1
run overlappingEnrollment for 3 expect 1
check EveryClassTaught for 3 expect 0
check StudentsBusy for 3 expect 0
"""

CLASSROOM_B = """
abstract sig Person { tutors: set Person }
sig Student extends Person {}
sig Teacher extends Person {}

fact Tutoring {
  all p: Person | p not in p.^tutors
  all t: Teacher | t.tutors in Student
  all s: Student | no s.tutors
}

fact Capacity {
  all t: Teacher | lone t.tutors
  some Student implies some Teacher
}

pred hasTutoring { some p: Person | some p.tutors }
pred everyStudentTutored { all s: Student | some tutors.s }

assert NoSelfTutoring {
  all p: Person | p not in p.tutors
}
assert OnlyTeachersTutor {
  all p: Person, q: p.tutors | p in Teacher
}

run hasTutoring for 3 expect 1
check NoSelfTutoring for 3 expect 0
check OnlyTeachersTutor for 3 expect 0
"""

CLASSROOM_C = """
sig Student { assigned: lone Group }
sig Group { grade: lone Grade }
sig Grade {}

fact Grading {
  all g: Group | some s: Student | g = s.assigned
  all s: Student | some s.assigned
  all g: Group | lone g.grade
}

pred gradedGroups { some g: Group | some g.grade }
pred sharedGroup { some disj s1, s2: Student | s1.assigned = s2.assigned }
fun members[g: Group]: set Student { assigned.g }

assert GroupsPopulated {
  no g: Group | no assigned.g
}
assert EveryoneGrouped {
  all s: Student | one s.assigned
}

run gradedGroups for 3 expect 1
check GroupsPopulated for 3 expect 0
check EveryoneGrouped for 3 expect 0
"""

register("classroom_a", "classroom", "alloy4fun", CLASSROOM_A)
register("classroom_b", "classroom", "alloy4fun", CLASSROOM_B)
register("classroom_c", "classroom", "alloy4fun", CLASSROOM_C)
