"""Production domain: automated production line models."""

from repro.benchmarks.models.registry import register

PRODUCTION_A = """
sig Product { parts: set Component }
sig Component { madeBy: one Machine }
sig Machine {}

fact Line {
  all p: Product | some p.parts
  all m: Machine | some madeBy.m
}

fact Sharing {
  all c: Component | some parts.c
  all p: Product | #p.parts <= 3
}

pred running { some Product and some Machine }
pred sharedComponent { some c: Component | some disj p1, p2: Product | c in p1.parts & p2.parts }
fun producedBy[m: Machine]: set Component { madeBy.m }

assert ProductsAssembled {
  no p: Product | no p.parts
}
assert MachinesBusy {
  all m: Machine | some c: Component | m = c.madeBy
}

run running for 3 expect 1
check ProductsAssembled for 3 expect 0
check MachinesBusy for 3 expect 0
"""

PRODUCTION_B = """
sig Robot { operates: set Conveyor }
sig Conveyor { feeds: lone Conveyor }

fact Layout {
  all c: Conveyor | c not in c.^feeds
  all c: Conveyor | some operates.c
}

fact Staffing {
  all r: Robot | lone r.operates
}

pred flowing { some c: Conveyor | some c.feeds }
pred pipeline { some c: Conveyor | some c.feeds.feeds }

assert NoFeedbackLoop {
  no c: Conveyor | c in c.^feeds
}
assert AllOperated {
  all c: Conveyor | some r: Robot | c in r.operates
}

run flowing for 3 expect 1
check NoFeedbackLoop for 3 expect 0
check AllOperated for 3 expect 0
"""

register("production_a", "production", "alloy4fun", PRODUCTION_A)
register("production_b", "production", "alloy4fun", PRODUCTION_B)
