"""Trash domain: the file-system trash-can models."""

from repro.benchmarks.models.registry import register

TRASH_A = """
sig File { link: lone File }
one sig Trash { files: set File }

fact TrashInvariant {
  all f: File | f.link in Trash.files implies f in Trash.files
  no f: Trash.files | some link.f - Trash.files
}

fact LinkShape {
  all f: File | f.link != f
}

pred somethingDeleted { some Trash.files }
pred chainedLinks { some f: File | some f.link.link }
fun trashed: set File { Trash.files }

assert LinksFollow {
  all f: File | f.link in Trash.files implies f in Trash.files
}

run somethingDeleted for 3 expect 1
check LinksFollow for 3 expect 0
"""

TRASH_B = """
sig Document { parent: lone Folder }
sig Folder { contains: set Document }
one sig Recycled { docs: set Document }

fact Consistency {
  all d: Document, f: Folder | d.parent = f iff d in f.contains
  all d: Recycled.docs | no d.parent
}

fact FolderShape {
  all f: Folder | #f.contains <= 3
}

pred organized { some d: Document | some d.parent }
pred crowdedFolder { some f: Folder | some disj d1, d2: Document | d1 + d2 in f.contains }

assert ParentMatches {
  all f: Folder, d: f.contains | d.parent = f
}
assert RecycledDetached {
  no d: Recycled.docs | some d.parent
}

run organized for 3 expect 1
check ParentMatches for 3 expect 0
check RecycledDetached for 3 expect 0
"""

register("trash_a", "trash", "alloy4fun", TRASH_A)
register("trash_b", "trash", "alloy4fun", TRASH_B)
