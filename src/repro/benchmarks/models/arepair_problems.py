"""The twelve ARepair-benchmark problems.

Six problems mirror Alloy Analyzer distribution models (addr, cd, ctree,
farmer, bempl, other) and six mirror graduate-assignment models (arr,
balancedBST, dll, fsm, grade, student), matching the published benchmark's
problem mix.  Each registered model is the *correct* version; faults are
injected per the published per-problem counts.
"""

from repro.benchmarks.models.registry import register

ADDR = """
sig Name {}
sig Addr {}
one sig Book { entries: Name -> lone Addr }

fact NonEmpty {
  some Book.entries
}

pred lookupWorks { some n: Name | some n.(Book.entries) }

assert LoneTargets {
  all n: Name | lone n.(Book.entries)
}

run lookupWorks for 3 expect 1
check LoneTargets for 3 expect 0
"""

ARR = """
sig Slot { succ: lone Slot, holds: lone Value }
sig Value { lte: set Value }

fact Ordering {
  all v: Value | v in v.lte
  all u: Value, v: Value | (v in u.lte and u in v.lte) implies u = v
  all u: Value, v: Value | v in u.lte or u in v.lte
}

fact Sorted {
  all s: Slot | s.succ != s
  all s: Slot, t: s.succ | some s.holds and some t.holds implies t.holds in s.holds.lte
}

pred filled { some s: Slot | some s.holds }

assert SortedPairs {
  all s: Slot, t: s.succ | (some s.holds and some t.holds) implies t.holds in s.holds.lte
}

run filled for 3 expect 1
check SortedPairs for 3 expect 0
"""

BALANCED_BST = """
sig Node { left: lone Node, right: lone Node }
one sig RootHolder { root: lone Node }

fact TreeShape {
  all n: Node | n not in n.^(left + right)
  all n: Node | no n.left & n.right
  all n: Node | lone (left + right).n
}

pred nonTrivialTree { some n: Node | some n.left and some n.right }

assert Acyclic {
  no n: Node | n in n.^(left + right)
}
assert DisjointChildren {
  all n: Node | no n.left & n.right
}

run nonTrivialTree for 3 expect 1
check Acyclic for 3 expect 0
check DisjointChildren for 3 expect 0
"""

BEMPL = """
sig Employee { worksIn: one Department, manages: set Employee }
sig Department { head: lone Employee }

fact Management {
  all e: Employee | e not in e.^manages
  all d: Department | d.head.worksIn in d
}

pred structured { some e: Employee | some e.manages }

assert NoSelfManagement {
  no e: Employee | e in e.^manages
}
assert HeadsInHouse {
  all d: Department, h: d.head | h.worksIn = d
}

run structured for 3 expect 1
check NoSelfManagement for 3 expect 0
check HeadsInHouse for 3 expect 0
"""

CD = """
abstract sig Type {}
sig Class extends Type { ext: lone Class, implements: set Interface }
sig Interface extends Type {}

fact Inheritance {
  all c: Class | c not in c.^ext
}

pred hierarchy { some c: Class | some c.ext }

assert AcyclicInheritance {
  no c: Class | c in c.^ext
}

run hierarchy for 3 expect 1
check AcyclicInheritance for 3 expect 0
"""

CTREE = """
abstract sig Color {}
one sig Red extends Color {}
one sig Black extends Color {}
sig CNode { child: set CNode, color: one Color }

fact ColoredTree {
  all n: CNode | n not in n.^child
  all n: CNode | lone child.n
  all n: CNode | n.color = Red implies n.child.color in Black
}

pred colored { some n: CNode | n.color = Red and some n.child }

assert NoRedRed {
  all n: CNode | n.color = Red implies no c: n.child | c.color = Red
}

run colored for 3 expect 1
check NoRedRed for 3 expect 0
"""

DLL = """
sig DNode { nxt: lone DNode, prv: lone DNode }

fact DoublyLinked {
  all n: DNode, m: n.nxt | m.prv = n
  all n: DNode, m: n.prv | m.nxt = n
  all n: DNode | n not in n.^nxt
}

pred linkedUp { some n: DNode | some n.nxt }

assert Inverse {
  nxt = ~prv
}
assert ForwardAcyclic {
  no n: DNode | n in n.^nxt
}

run linkedUp for 3 expect 1
check Inverse for 3 expect 0
check ForwardAcyclic for 3 expect 0
"""

FARMER = """
abstract sig Object {}
one sig Farmer extends Object {}
one sig Fox extends Object {}
one sig Chicken extends Object {}
one sig Grain extends Object {}
sig Crossing { near: set Object, far: set Object }

fact RiverRules {
  all c: Crossing | c.near + c.far = Object
  all c: Crossing | no c.near & c.far
  all c: Crossing | (Fox + Chicken in c.near and Farmer not in c.near) implies Chicken not in c.near
  all c: Crossing | (Chicken + Grain in c.far and Farmer not in c.far) implies Grain not in c.far
}

pred midCrossing { some c: Crossing | Farmer in c.far and Chicken in c.far }

assert Partition {
  all c: Crossing | Object = c.near + c.far and no c.near & c.far
}
assert ChickenSafe {
  no c: Crossing | Fox + Chicken in c.near and Farmer not in c.near
}

run midCrossing for 3 but exactly 4 Object expect 1
check Partition for 3 but exactly 4 Object expect 0
check ChickenSafe for 3 but exactly 4 Object expect 0
"""

FSM = """
sig FsmState { next: set FsmState }
one sig Start extends FsmState {}
one sig Final extends FsmState {}

fact Machine {
  no Final.next
  no next.Start
  FsmState in Start.*next
}

pred progresses { some Start.next }

assert FinalTerminal {
  no Final.next
}
assert AllReachable {
  FsmState in Start.*next
}

run progresses for 3 expect 1
check FinalTerminal for 3 expect 0
check AllReachable for 3 expect 0
"""

GRADE = """
sig Submission { gradedBy: lone Grader, score: lone Mark }
sig Grader {}
sig Mark {}

fact GradingRules {
  all s: Submission | some s.score implies some s.gradedBy
}

pred graded { some s: Submission | some s.score }

assert ScoredMeansGraded {
  all s: Submission | some s.score implies some s.gradedBy
}

run graded for 3 expect 1
check ScoredMeansGraded for 3 expect 0
"""

OTHER = """
sig Resource { heldBy: lone Agent }
sig Agent { requests: set Resource }

fact Allocation {
  all a: Agent | no a.requests & heldBy.a
  all r: Resource | some r.heldBy implies r not in r.heldBy.requests
}

pred busy { some a: Agent | some a.requests }

assert NoHoldAndRequest {
  all a: Agent, r: a.requests | a != r.heldBy
}

run busy for 3 expect 1
check NoHoldAndRequest for 3 expect 0
"""

STUDENT = """
sig Course { prereq: set Course }
sig Pupil { passed: set Course, taking: set Course }

fact Study {
  all c: Course | c not in c.^prereq
  all p: Pupil | no p.passed & p.taking
  all p: Pupil, c: p.taking | c.prereq in p.passed
}

pred activeStudy { some p: Pupil | some p.taking }

assert PrereqsMet {
  all p: Pupil, c: p.taking | c.prereq in p.passed
}
assert NoRetakeWhilePassing {
  all p: Pupil | no c: Course | c in p.passed and c in p.taking
}

run activeStudy for 3 expect 1
check PrereqsMet for 3 expect 0
check NoRetakeWhilePassing for 3 expect 0
"""

register("addr", "addr", "arepair", ADDR)
register("arr", "arr", "arepair", ARR)
register("balancedBSt", "balancedBSt", "arepair", BALANCED_BST)
register("bempl", "bempl", "arepair", BEMPL)
register("cd", "cd", "arepair", CD)
register("ctree", "ctree", "arepair", CTREE)
register("dll", "dll", "arepair", DLL)
register("farmer", "farmer", "arepair", FARMER)
register("fsm", "fsm", "arepair", FSM)
register("grade", "grade", "arepair", GRADE)
register("other", "other", "arepair", OTHER)
register("Student", "Student", "arepair", STUDENT)
