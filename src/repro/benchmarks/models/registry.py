"""Registry of base (correct) specification models.

Every benchmark variant is derived from one of these ground-truth models by
seeded fault injection.  Each model's commands carry explicit ``expect``
annotations that the model itself satisfies — the property oracle the
traditional tools consume.  A generation-time validation asserts this
invariant for every registered model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelDef:
    """One registered ground-truth model."""

    name: str
    domain: str
    benchmark: str  # "alloy4fun" or "arepair"
    source: str


_REGISTRY: dict[str, ModelDef] = {}


def register(name: str, domain: str, benchmark: str, source: str) -> ModelDef:
    if name in _REGISTRY:
        raise ValueError(f"model {name!r} already registered")
    model = ModelDef(name=name, domain=domain, benchmark=benchmark, source=source)
    _REGISTRY[name] = model
    return model


def all_models() -> list[ModelDef]:
    _ensure_loaded()
    return list(_REGISTRY.values())


def models_for_domain(benchmark: str, domain: str) -> list[ModelDef]:
    _ensure_loaded()
    return [
        m
        for m in _REGISTRY.values()
        if m.benchmark == benchmark and m.domain == domain
    ]


def domains(benchmark: str) -> list[str]:
    _ensure_loaded()
    seen: list[str] = []
    for model in _REGISTRY.values():
        if model.benchmark == benchmark and model.domain not in seen:
            seen.append(model.domain)
    return seen


def get_model(name: str) -> ModelDef:
    _ensure_loaded()
    return _REGISTRY[name]


_LOADED = False


def _ensure_loaded() -> None:
    """Import every model module exactly once (they register on import)."""
    global _LOADED
    if _LOADED:
        return
    from repro.benchmarks.models import (  # noqa: F401
        arepair_problems,
        classroom,
        cv,
        graphs,
        lts,
        production,
        trash,
    )

    _LOADED = True
