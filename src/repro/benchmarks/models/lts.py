"""LTS domain: labeled transition system models."""

from repro.benchmarks.models.registry import register

LTS_A = """
sig State { trans: Event -> State }
sig Event {}
one sig Init extends State {}

fact Deterministic {
  all s: State, e: Event | lone e.(s.trans)
}

fact Reachable {
  State in Init.*{ s: State, t: State | some e: Event | t in e.(s.trans) }
}

fact NonBlocking {
  all s: State | some s.trans or s in Init
}

pred hasStep { some s: State | some s.trans }
pred branching { some s: State | some disj e1, e2: Event | some e1.(s.trans) and some e2.(s.trans) }

assert DeterministicSteps {
  all s: State, e: Event | lone e.(s.trans)
}

run hasStep for 3 expect 1
check DeterministicSteps for 3 expect 0
"""

LTS_B = """
sig Proc { waits: set Proc, active: lone Flag }
sig Flag {}

fact NoDeadlock {
  all p: Proc | p not in p.^waits
  all p: Proc | some p.waits implies no p.active
}

fact FlagDiscipline {
  all f: Flag | lone active.f
}

pred contention { some p: Proc | some p.waits }
pred chainOfTwo { some p: Proc | some p.waits.waits }
fun blockers[p: Proc]: set Proc { p.^waits }

assert WaitFree {
  no p: Proc | p in p.^waits
}
assert WaitersIdle {
  all p: Proc | some p.waits implies no p.active
}

run contention for 3 expect 1
check WaitFree for 3 expect 0
check WaitersIdle for 3 expect 0
"""

register("lts_a", "lts", "alloy4fun", LTS_A)
register("lts_b", "lts", "alloy4fun", LTS_B)
