"""Ground-truth model corpus for both benchmarks."""

from repro.benchmarks.models.registry import (
    ModelDef,
    all_models,
    domains,
    get_model,
    models_for_domain,
)

__all__ = [
    "ModelDef",
    "all_models",
    "domains",
    "get_model",
    "models_for_domain",
]
