"""Seeded fault injection into ground-truth models.

A *fault* is one or more mutations applied to a correct model such that the
result still compiles but is no longer equisatisfiable with the ground truth
(REP = 0) — exactly the property the study's benchmark specifications have.
Each injected fault also records the hints the single-round prompt settings
need: the fault's location, a (possibly vague or misleading) fix
description, and an assertion the repair must make pass.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.alloy.errors import AlloyError
from repro.alloy.nodes import Block, FactDecl, Module, PredDecl, SigDecl
from repro.alloy.parser import parse_module
from repro.alloy.pretty import print_module
from repro.alloy.resolver import resolve_module
from repro.alloy.walk import Path, get_at
from repro.analyzer.analyzer import Analyzer
from repro.llm.prompts import RepairHints
from repro.metrics.rep import truth_command_outcomes
from repro.repair.mutation import Mutant, Mutator, mutation_points


@dataclass(frozen=True)
class FaultySpec:
    """One benchmark entry: a faulty specification plus its ground truth."""

    spec_id: str
    benchmark: str
    domain: str
    model_name: str
    faulty_source: str
    truth_source: str
    fault_description: str
    depth: int
    hints: RepairHints


# Natural-language fix descriptions per mutation-description prefix.  The
# keyword vocabulary matches what the simulated LLM knows how to read.
_FIX_TEMPLATES: list[tuple[str, str]] = [
    ("quantifier", "The quantifier of this constraint seems wrong."),
    ("compare", "The comparison operator looks too strong or too weak."),
    ("swap operands", "The comparison operands appear to be reversed."),
    ("logic", "The logical connective joining the conditions seems wrong."),
    ("multiplicity", "A multiplicity keyword appears incorrect."),
    ("field", "A field's declared multiplicity appears incorrect."),
    ("negate", "A negation seems to have crept into the constraint."),
    ("drop negation", "A negation seems to be missing from the constraint."),
    ("closure", "A transitive closure seems to be misused here."),
    ("^ ->", "A transitive closure seems to be misused here."),
    ("* ->", "A transitive closure seems to be misused here."),
    ("transpose", "A relation seems to be used in the wrong direction (transpose)."),
    ("drop conjunct", "A whole condition seems to be missing from this constraint."),
    ("name ", "A wrong relation or set seems to be referenced."),
    ("keep ", "Part of an expression seems to have been dropped."),
    ("operator", "A set operator in the expression seems wrong."),
]

_VAGUE_HINTS = [
    "Something may be off somewhere in this constraint.",
    "The constraint may not capture the intended behaviour.",
    "There may be an issue somewhere in the highlighted part.",
]

_MISLEADING_CLASSES = [
    "The quantifier of this constraint seems wrong.",
    "A negation seems to be missing from the constraint.",
    "A transitive closure seems to be misused here.",
    "A wrong relation or set seems to be referenced.",
]


@dataclass
class InjectionConfig:
    """Controls the fault mix of one benchmark family."""

    depth_weights: dict[int, float] = field(
        default_factory=lambda: {1: 0.8, 2: 0.2}
    )
    vague_hint_rate: float = 0.15
    misleading_hint_rate: float = 0.0
    removal_bias: float = 0.0
    """Probability of preferring constraint-removal mutations (synthesis-class
    faults that replacement-based search cannot reach)."""
    max_attempts_factor: int = 60


def describe_location(module: Module, path: Path) -> str:
    """A human-readable location hint for a mutation path."""
    if not path:
        return "somewhere in the specification"
    paragraph = get_at(module, (path[0],))
    if isinstance(paragraph, FactDecl):
        kind, name = "fact", paragraph.name or "unnamed"
    elif isinstance(paragraph, PredDecl):
        kind, name = "pred", paragraph.name
    elif isinstance(paragraph, SigDecl):
        field_index = next(
            (step[1] for step in path[1:] if step[0] == "fields"), None
        )
        if field_index is not None:
            field_name = paragraph.fields[field_index].name
            return f"sig '{paragraph.names[0]}', field '{field_name}'"
        return f"sig '{paragraph.names[0]}'"
    else:
        kind, name = "paragraph", getattr(paragraph, "name", "unnamed") or "unnamed"
    conjunct = next(
        (step[1] for step in path[1:] if step[0] == "formulas"), None
    )
    if conjunct is not None:
        return f"{kind} '{name}', constraint {conjunct + 1}"
    return f"{kind} '{name}'"


def describe_fix(description: str, rng: random.Random, config: InjectionConfig) -> str:
    """Turn a mutation description into the Fix hint, with realistic noise."""
    roll = rng.random()
    if roll < config.misleading_hint_rate:
        return rng.choice(_MISLEADING_CLASSES)
    if roll < config.misleading_hint_rate + config.vague_hint_rate:
        return rng.choice(_VAGUE_HINTS)
    first = description.split(";")[0]
    for needle, text in _FIX_TEMPLATES:
        if needle in first:
            return text
    return rng.choice(_VAGUE_HINTS)


class FaultInjector:
    """Generates faulty variants of one ground-truth model."""

    def __init__(
        self,
        model_name: str,
        benchmark: str,
        domain: str,
        truth_source: str,
        config: InjectionConfig,
        seed: int,
    ) -> None:
        self._model_name = model_name
        self._benchmark = benchmark
        self._domain = domain
        self._truth_source = truth_source
        self._config = config
        self._rng = random.Random(seed)
        self._truth_module = parse_module(truth_source)
        self._truth_info = resolve_module(self._truth_module)
        self._truth_outcomes = truth_command_outcomes(truth_source)
        self._commands = Analyzer(self._truth_module).info.commands

    def generate(self, count: int) -> list[FaultySpec]:
        """Produce ``count`` distinct, genuinely-faulty variants."""
        results: list[FaultySpec] = []
        seen: set[str] = set([print_module(self._truth_module)])
        attempts = 0
        max_attempts = max(count, 1) * self._config.max_attempts_factor
        while len(results) < count and attempts < max_attempts:
            attempts += 1
            depth = self._pick_depth()
            mutant = self._random_mutant(depth)
            if mutant is None:
                continue
            text = print_module(mutant.module)
            if text in seen:
                continue
            seen.add(text)
            if not self._is_faulty(mutant.module):
                continue
            results.append(self._to_spec(mutant, depth, len(results)))
        if len(results) < count:
            raise RuntimeError(
                f"model {self._model_name!r} yielded only {len(results)} of "
                f"{count} requested faults after {attempts} attempts"
            )
        return results

    def _pick_depth(self) -> int:
        weights = self._config.depth_weights
        total = sum(weights.values())
        roll = self._rng.random() * total
        cumulative = 0.0
        for depth, weight in sorted(weights.items()):
            cumulative += weight
            if roll <= cumulative:
                return depth
        return max(weights)

    def _random_mutant(self, depth: int) -> Mutant | None:
        module = self._truth_module
        descriptions: list[str] = []
        first_path: Path | None = None
        for _ in range(depth):
            try:
                info = resolve_module(module)
            except (AlloyError, RecursionError):
                return None
            points = mutation_points(module)
            if not points:
                return None
            mutator = Mutator(module, info)
            path = self._rng.choice(points)
            options = list(mutator.mutants_at(path))
            if not options:
                return None
            removals = [
                o
                for o in options
                if "drop conjunct" in o.description or "keep " in o.description
            ]
            if removals and self._rng.random() < self._config.removal_bias:
                chosen = self._rng.choice(removals)
            else:
                chosen = self._rng.choice(options)
            module = chosen.module
            descriptions.append(chosen.description)
            if first_path is None:
                first_path = chosen.path
        if first_path is None:
            return None
        return Mutant(
            module=module, description="; ".join(descriptions), path=first_path
        )

    def _is_faulty(self, module: Module) -> bool:
        """True when at least one ground-truth command outcome flips."""
        try:
            analyzer = Analyzer(module)
        except (AlloyError, RecursionError):
            return False
        for command, expected in zip(self._commands, self._truth_outcomes):
            try:
                result = analyzer.run_command(command)
            except (AlloyError, RecursionError):
                return False
            if result.sat != expected:
                return True
        return False

    def _to_spec(self, mutant: Mutant, depth: int, index: int) -> FaultySpec:
        location = describe_location(self._truth_module, mutant.path)
        fix = describe_fix(mutant.description, self._rng, self._config)
        passing = self._first_failing_check(mutant.module)
        spec_id = f"{self._model_name}#{index:04d}"
        return FaultySpec(
            spec_id=spec_id,
            benchmark=self._benchmark,
            domain=self._domain,
            model_name=self._model_name,
            faulty_source=print_module(mutant.module),
            truth_source=self._truth_source,
            fault_description=mutant.description,
            depth=depth,
            hints=RepairHints(
                location=location,
                fix_description=fix,
                passing_assertion=passing,
            ),
        )

    def _first_failing_check(self, module: Module) -> str | None:
        try:
            analyzer = Analyzer(module)
        except (AlloyError, RecursionError):
            return None
        for command, expected in zip(self._commands, self._truth_outcomes):
            if command.kind != "check" or command.target is None:
                continue
            try:
                result = analyzer.run_command(command)
            except (AlloyError, RecursionError):
                continue
            if result.sat != expected:
                return command.target
        return None
