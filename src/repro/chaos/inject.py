"""The injection runtime: ambient fault scopes and the ``fire`` probe.

Instrumented choke points call :func:`fire` with their site name.  Outside
an installed scope this is a single thread-local attribute read returning
``None`` — the production path stays allocation-free, mirroring how
:mod:`repro.obs` keeps untraced runs cheap.  Inside a scope, the plan
decides deterministically whether the fault fires, and every fired fault
is recorded as a :class:`FireEvent` so the invariant checker can replay
the schedule and demand that each injected failure surfaced in the right
place with the right error code.

The scope is thread-local for the same reason the observability scope is:
each experiment shard installs the plan fresh inside its worker (thread or
forked process), so parallel shards never share trigger counters and the
fault sequence a shard sees is independent of the executor.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro import obs
from repro.chaos.plan import FaultPlan

_ACTIVE = threading.local()

_GARBAGE_LINES = (
    "Sorry, I cannot help with that specification.",
    "TODO(model): resume from checkpoint 0x%08x",
    "<<<<<<< HEAD",
    "{\"error\": \"content filter triggered\"}",
    "lorem ipsum sig dolor sit amet",
)


@dataclass
class FireEvent:
    """One fault that actually fired, with enough context to audit it."""

    site: str
    index: int
    """The site's trigger index at which this fault fired."""
    payload: int
    info: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "site": self.site,
            "index": self.index,
            "payload": self.payload,
            "info": dict(self.info),
        }


@dataclass
class ChaosScope:
    """Mutable per-installation state: trigger counters and fired events."""

    plan: FaultPlan
    salt: str = ""
    """Keys this installation's fault stream (see :meth:`FaultPlan.draw`);
    the experiment engine salts with the shard's spec id so different
    shards draw different — but still deterministic — schedules."""
    triggers: dict[str, int] = field(default_factory=dict)
    fires: dict[str, int] = field(default_factory=dict)
    events: list[FireEvent] = field(default_factory=list)


def active() -> ChaosScope | None:
    """The calling thread's chaos scope, or ``None`` (the default)."""
    return getattr(_ACTIVE, "scope", None)


@contextmanager
def install(plan: FaultPlan | None, salt: str = "") -> Iterator[ChaosScope | None]:
    """Install ``plan`` on the calling thread (``None`` is a no-op).

    Trigger counters start at zero on every installation: the unit of
    deterministic replay is one installed scope, which the experiment
    engine aligns with one shard (salting the stream with its spec id).
    """
    if plan is None:
        yield None
        return
    previous = getattr(_ACTIVE, "scope", None)
    scope = ChaosScope(plan=plan, salt=salt)
    _ACTIVE.scope = scope
    try:
        yield scope
    finally:
        _ACTIVE.scope = previous


def fire(site: str, **info: Any) -> FireEvent | None:
    """Ask the active plan whether the fault at ``site`` fires now.

    Returns the recorded :class:`FireEvent` (whose ``payload`` steers the
    fault's shape) when it does, ``None`` otherwise — including always
    outside a scope and for sites the plan does not configure.
    """
    scope = getattr(_ACTIVE, "scope", None)
    if scope is None:
        return None
    config = scope.plan.config_for(site)
    if config is None:
        return None
    index = scope.triggers.get(site, 0)
    scope.triggers[site] = index + 1
    if index < config.start_after:
        return None
    if config.max_fires is not None and scope.fires.get(site, 0) >= config.max_fires:
        return None
    fraction, payload = scope.plan.draw(site, index, salt=scope.salt)
    if fraction >= config.probability:
        return None
    scope.fires[site] = scope.fires.get(site, 0) + 1
    event = FireEvent(site=site, index=index, payload=payload, info=dict(info))
    scope.events.append(event)
    if obs.get_metrics().enabled:
        obs.counter("chaos.fired", site=site).inc()
    return event


# -- fault factories for the instrumented sites -------------------------------

CRASH_CODES = (
    "internal.RuntimeError",
    "runtime.recursion",
    "io.error",
    "analysis.budget",
    "llm.extract",
)
"""The error-taxonomy classes ``repair.crash`` rotates through.  Ordering
is part of the deterministic contract: ``payload % len(CRASH_CODES)``
picks the class, and the invariant checker recomputes the same choice."""


def crash_exception(payload: int) -> tuple[str, BaseException]:
    """The (expected error code, exception) for one ``repair.crash`` fire.

    Imports are local so the low-level layers that import this module
    (solver, persistence) never drag the analyzer/LLM stacks in.
    """
    code = CRASH_CODES[payload % len(CRASH_CODES)]
    if code == "internal.RuntimeError":
        return code, RuntimeError("chaos: injected tool crash")
    if code == "runtime.recursion":
        return code, RecursionError("chaos: injected recursion overflow")
    if code == "io.error":
        return code, OSError("chaos: injected I/O failure")
    if code == "analysis.budget":
        from repro.alloy.errors import AnalysisBudgetError

        return code, AnalysisBudgetError("chaos: injected analysis budget overrun")
    from repro.llm.extract import ExtractionError

    return code, ExtractionError("chaos: injected extraction failure")


def garbled_completion(payload: int) -> str:
    """A deterministic non-Alloy completion for ``llm.garbage``."""
    line = _GARBAGE_LINES[payload % len(_GARBAGE_LINES)]
    return f"{line}\n(chaos marker {payload % 9973})"


def truncated_completion(text: str, payload: int) -> str:
    """Cut a completion off mid-stream, the token-limit signature.

    The cut lands in the middle third of the text so a fenced spec loses
    its closing fence — exactly the case the extraction layer's
    unterminated-fence recovery exists for.  Never returns a blank string
    (the retry layer treats blank as transient, which is a different site).
    """
    if len(text) < 6:
        return "```"
    lower = len(text) // 3
    cut = lower + payload % max(1, len(text) - 2 * lower)
    truncated = text[:cut]
    return truncated if truncated.strip() else "```"


def mangle_bytes(data: bytes, site: str, payload: int) -> bytes:
    """The corrupted byte stream for the two persistence sites.

    ``persist.truncate`` halves the payload (a process killed mid-write);
    ``persist.corrupt`` splices NUL-framed garbage at a payload-chosen
    offset.  Both productions are invalid JSON wherever they land, which
    is what lets the harness assert that *no* corrupted cache file ever
    parses as valid.
    """
    if site == "persist.truncate":
        cut = max(1, len(data) // 2)
        # Never cut on a record boundary: a JSONL file truncated exactly
        # at a newline would read back as valid-but-shorter, silently
        # losing records instead of surfacing as corruption.  Walk back
        # until the cut is strictly inside a line.
        while cut > 1 and (
            data[cut - 1 : cut] == b"\n" or data[cut : cut + 1] == b"\n"
        ):
            cut -= 1
        return data[:cut]
    junk = b"\x00chaos\x00"
    position = payload % (len(data) + 1) if data else 0
    return data[:position] + junk + data[position:]
