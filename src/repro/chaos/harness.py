"""The chaos invariant checker behind ``repro chaos``.

Each *drill* turns one resilience contract from the runtime and
experiment layers into an executable assertion, under deterministic
fault injection:

- **matrix-equivalence** — with faults firing in the solver, analyzer,
  repair tools, and LLM transport, serial, thread-pool, and process-pool
  runs of the same :class:`~repro.experiments.runner.RunConfig` produce
  identical matrices and identical fault schedules, and every injected
  ``repair.crash`` surfaces as exactly the right
  :class:`~repro.runtime.guard.FailureRecord`;
- **persist-corruption** — no cache file damaged by ``persist.*`` faults
  ever reads back as valid: the tolerant readers raise
  :class:`~repro.runtime.errors.CacheCorruptionError`, never return
  garbage;
- **resume** — a run killed mid-flight resumes from its flushed shards:
  nothing completed is recomputed, and the resumed matrix equals a clean
  one;
- **llm-retry** — transient LLM faults bounded under the retry budget are
  fully absorbed: the matrix is bit-identical to a fault-free run;
- **shard-timeout** — a deliberately slow shard records a
  ``shard.timeout`` failure while every other cell still completes, under
  all three executors.

Drills run inside a temporary ``REPRO_CACHE_DIR`` so they never touch
(or trust) the user's caches.  The report is plain JSON written with
sorted keys and **no** timestamps, durations, or paths — two runs with
the same seed must produce byte-identical reports, which is itself one
of the determinism guarantees CI pins.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.chaos.inject import install
from repro.chaos.plan import SITES, FaultPlan, SiteConfig
from repro.runtime.errors import CacheCorruptionError

CHAOS_SCHEMA = "repro-chaos/1"
"""Stamped into every chaos report; bump on any shape change."""

EQUIVALENCE_SITES: dict[str, SiteConfig] = {
    "sat.budget": SiteConfig(probability=0.02, max_fires=2),
    "sat.flip": SiteConfig(probability=0.02, max_fires=2),
    "analyzer.explode": SiteConfig(probability=0.01, max_fires=1),
    "repair.crash": SiteConfig(probability=0.2, max_fires=3),
    "llm.garbage": SiteConfig(probability=0.15, max_fires=2),
    "llm.truncate": SiteConfig(probability=0.15, max_fires=2),
}
"""Per-site tuning for the equivalence drill: frequent enough that every
selected site fires somewhere in the matrix, bounded so the run still
exercises plenty of healthy cells."""

EQUIVALENCE_TECHNIQUES = (
    "ATR",
    "BeAFix",
    "Single-Round_Pass",
    "Multi-Round_Generic",
)
"""Two traditional and two LLM techniques: every instrumented layer
(solver, analyzer, repair loop, LLM transport) sits on some cell's path."""

_PERSIST_SITES = ("persist.corrupt", "persist.truncate")


@dataclass
class DrillResult:
    """One drill's verdict: its violations (empty = contract held)."""

    name: str
    violations: list[str] = field(default_factory=list)
    detail: dict = field(default_factory=dict)
    skipped: bool = False

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "skipped": self.skipped,
            "violations": list(self.violations),
            "detail": dict(self.detail),
        }


@contextmanager
def _temp_cache() -> Iterator[Path]:
    """An isolated cache universe for one drill (or the whole run).

    ``REPRO_CACHE_DIR`` is read per call by :func:`repro.benchmarks.cache
    .cache_dir`, and the ``fork`` process backend inherits the
    environment, so pointing it at a temp dir isolates every layer —
    benchmark caches, result matrices — in every executor.
    """
    previous = os.environ.get("REPRO_CACHE_DIR")
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        os.environ["REPRO_CACHE_DIR"] = tmp
        try:
            yield Path(tmp)
        finally:
            if previous is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = previous


def matrix_payload(matrix) -> dict:
    """The determinism-relevant projection of a matrix: everything except
    wall-clock fields, sorted for stable comparison and JSON emission."""
    return {
        spec_id: {
            technique: {
                "rep": outcome.rep,
                "tm": round(outcome.tm, 9),
                "sm": round(outcome.sm, 9),
                "status": outcome.status,
            }
            for technique, outcome in sorted(row.items())
        }
        for spec_id, row in sorted(matrix.outcomes.items())
    }


def _events_by_site(events: list[dict]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for event in events:
        counts[event["site"]] = counts.get(event["site"], 0) + 1
    return dict(sorted(counts.items()))


# -- drills -------------------------------------------------------------------


def equivalence_drill(
    seed: int, requested: set[str], jobs: int, scale: float
) -> DrillResult:
    """Serial ≡ thread ≡ process under injected faults, crashes audited."""
    from repro.experiments.runner import RunConfig, run_matrix
    from repro.runtime.guard import summarize_failures

    drill = DrillResult(name="matrix-equivalence")
    active = sorted(requested & set(EQUIVALENCE_SITES))
    if not active:
        drill.skipped = True
        return drill
    plan = FaultPlan(
        seed=seed, sites={site: EQUIVALENCE_SITES[site] for site in active}
    )
    runs = {}
    for label, (executor, n) in (
        ("serial", ("serial", 1)),
        ("thread", ("thread", jobs)),
        ("process", ("process", jobs)),
    ):
        with _temp_cache():
            runs[label] = run_matrix(
                RunConfig(
                    benchmark="arepair",
                    scale=scale,
                    seed=seed,
                    techniques=EQUIVALENCE_TECHNIQUES,
                    jobs=n,
                    executor=executor,
                    use_cache=False,
                    chaos=plan,
                )
            )
    base = matrix_payload(runs["serial"])
    base_events = runs["serial"].chaos_events
    for label in ("thread", "process"):
        if matrix_payload(runs[label]) != base:
            drill.violations.append(
                f"{label} matrix diverges from serial under the same plan"
            )
        if runs[label].chaos_events != base_events:
            drill.violations.append(
                f"{label} fault schedule diverges from serial"
            )

    # Crash audit: every injected repair.crash must have escaped the tool,
    # been captured by the engine, and classified with the exact taxonomy
    # code the plan chose.
    failures = {
        record.where: record.code for record in runs["serial"].failures
    }
    crash_events = [e for e in base_events if e["site"] == "repair.crash"]
    for event in crash_events:
        where = f"{event['info'].get('spec')}:{event['info'].get('technique')}"
        expected = event["info"].get("code")
        found = failures.get(where)
        if found is None:
            drill.violations.append(
                f"injected crash at {where} produced no failure record"
            )
        elif found != expected:
            drill.violations.append(
                f"crash at {where}: expected code {expected}, recorded {found}"
            )
    fired = {e["site"] for e in base_events}
    for site in active:
        if site not in fired:
            drill.violations.append(
                f"site {site} never fired — the drill proved nothing about it"
            )
    drill.detail = {
        "sites": active,
        "events_by_site": _events_by_site(base_events),
        "failures_by_code": summarize_failures(runs["serial"].failures),
        "cells": sum(len(row) for row in base.values()),
        "payload": base,
    }
    return drill


def persist_drill(seed: int, requested: set[str]) -> DrillResult:
    """No corrupted cache file ever parses as valid."""
    from repro.runtime.persist import (
        atomic_write_json,
        atomic_write_jsonl,
        load_json,
        load_jsonl,
    )

    drill = DrillResult(name="persist-corruption")
    active = sorted(requested & set(_PERSIST_SITES))
    if not active:
        drill.skipped = True
        return drill
    writes = 0
    with _temp_cache() as tmp:
        for site in active:
            plan = FaultPlan(seed=seed, sites={site: SiteConfig()})
            with install(plan):
                for index in range(4):
                    path = tmp / f"{site}-{index}.json"
                    atomic_write_json(
                        path,
                        {"index": index, "rows": list(range(12))},
                        schema="chaos-drill/1",
                    )
                    writes += 1
                    try:
                        load_json(path, schema="chaos-drill/1")
                        drill.violations.append(
                            f"{site}: damaged JSON file #{index} read back "
                            "as valid"
                        )
                    except CacheCorruptionError:
                        pass
                    lines = tmp / f"{site}-{index}.jsonl"
                    atomic_write_jsonl(
                        lines,
                        [{"index": index, "row": row} for row in range(6)],
                        schema="chaos-drill/1",
                    )
                    writes += 1
                    try:
                        load_jsonl(lines, schema="chaos-drill/1")
                        drill.violations.append(
                            f"{site}: damaged JSONL file #{index} read back "
                            "as valid"
                        )
                    except CacheCorruptionError:
                        pass
    drill.detail = {"sites": active, "writes": writes}
    return drill


class _Interrupt(Exception):
    """The drill's stand-in for SIGKILL: aborts the run mid-loop."""


class _InterruptingListener:
    """Raises out of the engine after ``after`` completed shards."""

    def __init__(self, after: int) -> None:
        self.after = after

    def on_cell(self, benchmark, outcome, done, total) -> None:
        pass

    def on_failure(self, benchmark, failure) -> None:
        pass

    def on_metrics(self, benchmark, summary) -> None:
        pass

    def on_shard_done(self, benchmark, spec_id, shards_done, total) -> None:
        if shards_done >= self.after:
            raise _Interrupt()


def resume_drill(seed: int, scale: float) -> DrillResult:
    """A killed run resumes from its flushed shards, recomputing nothing
    already completed, and converges to the clean result."""
    from repro.experiments import runner
    from repro.experiments.runner import RunConfig, run_matrix

    drill = DrillResult(name="resume")
    techniques = ("ATR",)

    def config(listener=None) -> RunConfig:
        return RunConfig(
            benchmark="arepair",
            scale=scale,
            seed=seed,
            techniques=techniques,
            listener=listener,
        )

    with _temp_cache():
        clean = matrix_payload(run_matrix(config()))
    total_shards = len(clean)
    kill_after = max(2, total_shards // 3)
    with _temp_cache():
        try:
            run_matrix(config(listener=_InterruptingListener(kill_after)))
            drill.violations.append(
                "interrupting listener failed to abort the run"
            )
        except _Interrupt:
            pass
        # The engine flushes *after* the listener callback, so the shard
        # that raised was not flushed: exactly kill_after - 1 shards
        # survive the kill, and the resume must recompute all the rest.
        recomputed: list[str] = []
        original = runner.run_spec

        def counting(spec, technique, seed, truth_outcomes=None):
            recomputed.append(spec.spec_id)
            return original(spec, technique, seed, truth_outcomes)

        runner.run_spec = counting
        try:
            resumed = run_matrix(config())
        finally:
            runner.run_spec = original
    expected = total_shards - (kill_after - 1)
    if len(recomputed) != expected:
        drill.violations.append(
            f"resume recomputed {len(recomputed)} shards, expected "
            f"{expected} (of {total_shards}; {kill_after - 1} were flushed)"
        )
    if matrix_payload(resumed) != clean:
        drill.violations.append("resumed matrix diverges from the clean run")
    drill.detail = {
        "shards": total_shards,
        "flushed_before_kill": kill_after - 1,
        "recomputed": expected,
    }
    return drill


def retry_drill(seed: int, requested: set[str], scale: float) -> DrillResult:
    """Bounded transient LLM faults are absorbed without a trace in the
    results: the retry layer makes the matrix bit-identical to a clean run."""
    from repro.experiments.runner import RunConfig, run_matrix

    drill = DrillResult(name="llm-retry")
    if "llm.transient" not in requested:
        drill.skipped = True
        return drill
    # max_fires=2 stays under the default RetryPolicy's 3 attempts, so
    # every shard's first completion succeeds on its final attempt.
    plan = FaultPlan(
        seed=seed,
        sites={"llm.transient": SiteConfig(probability=1.0, max_fires=2)},
    )
    techniques = ("Single-Round_Pass",)

    def run(chaos):
        return run_matrix(
            RunConfig(
                benchmark="arepair",
                scale=scale,
                seed=seed,
                techniques=techniques,
                use_cache=False,
                chaos=chaos,
            )
        )

    with _temp_cache():
        clean = matrix_payload(run(None))
    with _temp_cache():
        chaotic = run(plan)
    if not chaotic.chaos_events:
        drill.violations.append("no transient fault ever fired")
    stray = {e["site"] for e in chaotic.chaos_events} - {"llm.transient"}
    if stray:
        drill.violations.append(f"unexpected sites fired: {sorted(stray)}")
    if matrix_payload(chaotic) != clean:
        drill.violations.append(
            "matrix under retried transient faults diverges from clean run"
        )
    drill.detail = {
        "events": len(chaotic.chaos_events),
        "shards": len(clean),
    }
    return drill


class _SlowTool:
    """A technique that oversleeps its shard's deadline on one target spec."""

    name = "ChaosSlow"

    def __init__(self, target: bool, nap: float) -> None:
        self._target = target
        self._nap = nap

    def repair(self, task):
        from repro.repair.base import RepairResult, RepairStatus

        if self._target:
            time.sleep(self._nap)
        return RepairResult(
            status=RepairStatus.NOT_FIXED, technique=self.name
        )


def timeout_drill(seed: int, jobs: int, scale: float) -> DrillResult:
    """A slow shard records ``shard.timeout``; every other cell completes —
    under all three executors."""
    from repro.benchmarks.cache import load_benchmark
    from repro.experiments.runner import RunConfig, run_matrix
    from repro.repair import registry

    drill = DrillResult(name="shard-timeout")
    # The deadline must comfortably exceed a healthy shard's truth-oracle
    # plus one-cell cost (so no healthy shard is ever timed out, even on a
    # loaded machine), while the nap clearly overshoots it — yet stays
    # inside the ProcessExecutor watchdog allowance (2 * deadline + 1), so
    # the *cooperative* deadline path is the one under test here.
    deadline = 2.0
    nap = 3.5
    with _temp_cache():
        specs = load_benchmark("arepair", seed=seed, scale=scale)
        target = specs[0].spec_id
        registry.register(
            "ChaosSlow",
            lambda spec, cell_seed: _SlowTool(
                target=spec.spec_id == target, nap=nap
            ),
            replace=True,
        )
        try:
            # The slow technique runs first so the shard still has a
            # pending cell when the deadline check runs between cells.
            techniques = ("ChaosSlow", "ATR")
            for executor in ("serial", "thread", "process"):
                matrix = run_matrix(
                    RunConfig(
                        benchmark="arepair",
                        scale=scale,
                        seed=seed,
                        techniques=techniques,
                        jobs=1 if executor == "serial" else jobs,
                        executor=executor,
                        use_cache=False,
                        shard_timeout=deadline,
                    )
                )
                timeouts = [
                    record
                    for record in matrix.failures
                    if record.code == "shard.timeout"
                ]
                if not any(
                    record.where == f"{target}:shard" for record in timeouts
                ):
                    drill.violations.append(
                        f"{executor}: slow shard {target} recorded no "
                        "shard.timeout failure"
                    )
                for spec in specs:
                    row = matrix.outcomes.get(spec.spec_id, {})
                    for technique in techniques:
                        outcome = row.get(technique)
                        if outcome is None:
                            drill.violations.append(
                                f"{executor}: cell {spec.spec_id}:{technique} "
                                "missing from the matrix"
                            )
                        elif (
                            spec.spec_id != target
                            and outcome.status == "timeout"
                        ):
                            drill.violations.append(
                                f"{executor}: healthy cell "
                                f"{spec.spec_id}:{technique} was timed out"
                            )
                if matrix.outcomes.get(target, {}).get("ATR") is not None and (
                    matrix.outcomes[target]["ATR"].status != "timeout"
                ):
                    drill.violations.append(
                        f"{executor}: pending cell {target}:ATR should have "
                        "timed out but has status "
                        f"{matrix.outcomes[target]['ATR'].status!r}"
                    )
        finally:
            registry.unregister("ChaosSlow")
    drill.detail = {
        "target": target,
        "deadline": deadline,
        "executors": ["serial", "thread", "process"],
    }
    return drill


# -- orchestration ------------------------------------------------------------


def run_drills(
    seed: int = 0,
    sites: Iterable[str] | None = None,
    jobs: int = 2,
    scale: float = 0.05,
) -> dict:
    """Run every applicable drill and assemble the deterministic report."""
    requested = set(sites) if sites is not None else set(SITES)
    unknown = requested - set(SITES)
    if unknown:
        raise ValueError(
            f"unknown injection site(s): {', '.join(sorted(unknown))}"
        )
    drills = [
        equivalence_drill(seed, requested, jobs, scale),
        persist_drill(seed, requested),
        retry_drill(seed, requested, scale),
        resume_drill(seed, scale),
        timeout_drill(seed, jobs, scale),
    ]
    violations = sum(len(drill.violations) for drill in drills)
    return {
        "schema": CHAOS_SCHEMA,
        "seed": seed,
        "jobs": jobs,
        "scale": scale,
        "sites": sorted(requested),
        "drills": [drill.to_json() for drill in drills],
        "violations": violations,
        "ok": violations == 0,
    }


def write_report(path: Path, report: dict) -> None:
    """Emit the report as canonical JSON — byte-identical across same-seed
    runs (sorted keys, fixed indentation, trailing newline)."""
    path.write_text(json.dumps(report, sort_keys=True, indent=2) + "\n")


def render_report(report: dict) -> str:
    """The human-readable summary printed by ``repro chaos``."""
    lines = [
        f"CHAOS — seed={report['seed']} jobs={report['jobs']} "
        f"scale={report['scale']:g} sites={len(report['sites'])}"
    ]
    for drill in report["drills"]:
        if drill["skipped"]:
            status = "SKIP"
        else:
            status = "ok" if drill["ok"] else "FAIL"
        lines.append(f"  [{status:>4}] {drill['name']}")
        for violation in drill["violations"]:
            lines.append(f"         - {violation}")
    verdict = (
        "all invariants held"
        if report["ok"]
        else f"{report['violations']} violation(s)"
    )
    lines.append(f"  {verdict}")
    return "\n".join(lines)
