"""``repro.chaos`` — deterministic, seeded fault injection for the stack.

The resilience runtime (error taxonomy, budgets, retry, crash isolation,
atomic persistence) only earns its keep if something exercises the failure
paths on purpose.  This package enumerates the fault space instead of
waiting for it:

- :class:`FaultPlan` (:mod:`repro.chaos.plan`) — a picklable, seeded
  schedule of which named injection sites fire and when;
- :func:`fire` (:mod:`repro.chaos.inject`) — the ambient probe the
  instrumented choke points call; a no-op outside an installed scope;
- :mod:`repro.chaos.harness` (imported lazily — it pulls in the whole
  experiment engine) — the ``repro chaos`` invariant drills that assert
  the PR-1/PR-2 contracts under injected faults.
"""

from repro.chaos.inject import (
    CRASH_CODES,
    ChaosScope,
    FireEvent,
    active,
    crash_exception,
    fire,
    garbled_completion,
    install,
    mangle_bytes,
    truncated_completion,
)
from repro.chaos.plan import SITES, FaultPlan, SiteConfig

__all__ = [
    "CRASH_CODES",
    "ChaosScope",
    "FaultPlan",
    "FireEvent",
    "SITES",
    "SiteConfig",
    "active",
    "crash_exception",
    "fire",
    "garbled_completion",
    "install",
    "mangle_bytes",
    "truncated_completion",
]
