"""Deterministic fault plans: *which* faults fire, *where*, and *when*.

A :class:`FaultPlan` is the whole configuration of one chaos run: a seed
plus a per-site :class:`SiteConfig`.  Decisions are a pure function of
``(seed, site, trigger index)`` — no RNG object, no hidden state — so

- the same plan produces the same fault schedule on every run,
- the plan pickles across :class:`~repro.experiments.executor.ShardTask`
  into worker processes unchanged, and
- serial, thread-pool, and process-pool executions of the same shard see
  the *identical* fault sequence (each shard installs the plan fresh, so
  trigger counters always start at zero at the shard boundary).

The known injection sites live in :data:`SITES`; registering the choke
points by name here (rather than scattering string literals) gives the
CLI a stable ``--sites`` vocabulary and the harness a matrix to assert
over.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, Mapping

SITES: dict[str, str] = {
    "sat.budget": "spurious BudgetExceeded out of the CDCL search loop",
    "sat.flip": "flip one literal of a learned clause (corrupts pruning)",
    "analyzer.explode": "oversized-clause explosion during translation",
    "repair.crash": "taxonomy-classed exception escaping RepairTool.repair",
    "llm.transient": "transient network-class error before the completion",
    "llm.garbage": "completion replaced with non-Alloy garbage",
    "llm.truncate": "completion cut off mid-fence (token-limit signature)",
    "persist.corrupt": "garbage bytes spliced into a cache file write",
    "persist.truncate": "cache file truncated mid-write",
}
"""Every registered injection site, with a one-line description."""


@dataclass(frozen=True)
class SiteConfig:
    """How one injection site behaves under a plan.

    Each *trigger* (one pass through the instrumented choke point) draws a
    deterministic fraction; the site *fires* when the fraction falls under
    ``probability``, the trigger index has passed ``start_after``, and
    fewer than ``max_fires`` faults have fired so far.
    """

    probability: float = 1.0
    max_fires: int | None = None
    start_after: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.max_fires is not None and self.max_fires < 0:
            raise ValueError(f"max_fires must be >= 0, got {self.max_fires}")
        if self.start_after < 0:
            raise ValueError(f"start_after must be >= 0, got {self.start_after}")


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus per-site configs — the complete chaos schedule.

    Frozen and built from plain tuples so instances hash, compare, and
    pickle; construct with a mapping and it normalizes.
    """

    seed: int
    sites: tuple[tuple[str, SiteConfig], ...] = ()

    def __post_init__(self) -> None:
        normalized = self.sites
        if isinstance(normalized, Mapping):
            normalized = tuple(sorted(normalized.items()))
        else:
            normalized = tuple(sorted(tuple(normalized)))
        for name, _ in normalized:
            if name not in SITES:
                raise ValueError(
                    f"unknown injection site {name!r} "
                    f"(known: {', '.join(sorted(SITES))})"
                )
        object.__setattr__(self, "sites", normalized)

    @classmethod
    def for_sites(
        cls,
        seed: int,
        sites: Iterable[str],
        *,
        probability: float = 1.0,
        max_fires: int | None = None,
        start_after: int = 0,
    ) -> "FaultPlan":
        """A plan applying one uniform config to every named site."""
        config = SiteConfig(
            probability=probability,
            max_fires=max_fires,
            start_after=start_after,
        )
        return cls(seed=seed, sites=tuple((name, config) for name in sites))

    def config_for(self, site: str) -> SiteConfig | None:
        for name, config in self.sites:
            if name == site:
                return config
        return None

    def site_names(self) -> list[str]:
        return [name for name, _ in self.sites]

    def draw(self, site: str, index: int, salt: str = "") -> tuple[float, int]:
        """The deterministic (fraction, payload) for one trigger.

        ``fraction`` in [0, 1) decides firing; ``payload`` is a 32-bit
        value the site uses to vary the fault (which literal to flip,
        which taxonomy class to raise, where to splice garbage).

        ``salt`` keys the stream to an installation (the experiment
        engine uses the shard's spec id): without it every shard would
        replay the *identical* per-site schedule, since trigger indices
        restart at zero per scope.  Salting is what makes fault schedules
        vary across shards while staying a pure function of the plan plus
        the shard's identity — and therefore executor-independent.
        """
        digest = hashlib.sha256(
            f"{self.seed}:{salt}:{site}:{index}".encode()
        ).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        payload = int.from_bytes(digest[8:12], "big")
        return fraction, payload

    def to_json(self) -> dict:
        """A JSON projection that :meth:`from_json` round-trips exactly —
        how a drill hands the identical plan to a subprocess replica."""
        return {
            "seed": self.seed,
            "sites": {
                name: {
                    "probability": config.probability,
                    "max_fires": config.max_fires,
                    "start_after": config.start_after,
                }
                for name, config in self.sites
            },
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "FaultPlan":
        sites = {
            name: SiteConfig(
                probability=float(entry.get("probability", 1.0)),
                max_fires=entry.get("max_fires"),
                start_after=int(entry.get("start_after", 0)),
            )
            for name, entry in dict(data.get("sites", {})).items()
        }
        return cls(seed=int(data["seed"]), sites=sites)

    def digest(self) -> str:
        """A stable fingerprint, folded into result-cache keys: a chaos
        run must never collide with — or be served from — a clean one."""
        payload = {
            "seed": self.seed,
            "sites": [
                [name, config.probability, config.max_fires, config.start_after]
                for name, config in self.sites
            ],
        }
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()[:12]
