"""Command-line interface: ``repro <command>`` or ``python -m repro``.

Commands:

- ``repro analyze <file.als>`` — run every command of a specification.
- ``repro repair <file.als> --technique ATR`` — repair one specification.
- ``repro table1 | figure2 | figure3 | hybrid`` — regenerate a paper artifact.
- ``repro all`` — regenerate everything and write EXPERIMENTS-report.txt.
- ``repro lint <spec>`` — static analysis: type-based and structural lints.
- ``repro validate-corpus`` — check the ground-truth model corpus.
- ``repro trace <file.jsonl>`` — summarize a trace: top spans, slowest cells.
- ``repro profile <file.jsonl>...`` — per-technique metric rollup.
- ``repro serve`` — the repair service daemon (jobs over a unix socket);
  ``--cluster-dir`` runs it as one replica of a lease-fenced fleet.
- ``repro submit | jobs`` — clients for a running daemon (a comma-separated
  ``--socket`` list fails over across replicas).
- ``repro loadgen`` — drive a synthetic client fleet, report availability;
  ``--replicas N`` hosts and load-balances a whole cluster.
- ``repro chaos [--service|--cluster]`` — fault-injection drills (engine,
  daemon, or replicated tier with a mid-job ``kill -9``).

Experiment commands accept ``--scale`` (fraction of the Alloy4Fun benchmark,
default 0.05 for laptop-friendly runs; 1.0 is the paper-sized benchmark),
``--seed``, ``--jobs N`` (parallel workers; results are bit-identical to a
serial run), ``--executor`` (force a backend), ``--techniques`` (a
comma-separated subset of registered techniques), ``--trace``/``--trace-out``
(capture spans + metrics to a trace JSONL), and ``--verbose`` (per-shard
timing lines).
"""

from __future__ import annotations

import argparse
import sys

EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2
EXIT_INPUT = 3
"""The input (file, specification, cache) was unusable."""
EXIT_INTERNAL = 4
"""An unclassified crash — almost certainly a bug in this repository."""


def _scale_arg(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"scale must be a number, got {text!r}")
    if not 0.0 < value <= 1.0:
        raise argparse.ArgumentTypeError(
            f"scale must be in (0, 1], got {value}"
        )
    return value


def _seed_arg(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"seed must be an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"seed must be non-negative, got {value}")
    return value


def _jobs_arg(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"jobs must be an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"jobs must be >= 1, got {value}")
    return value


def _timeout_arg(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shard timeout must be a number of seconds, got {text!r}"
        )
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"shard timeout must be > 0, got {value}"
        )
    return value


def _sites_arg(text: str) -> tuple[str, ...] | None:
    from repro.chaos import SITES

    if text.strip() == "all":
        return None
    names = tuple(name.strip() for name in text.split(",") if name.strip())
    if not names:
        raise argparse.ArgumentTypeError("sites list is empty")
    unknown = [name for name in names if name not in SITES]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown injection site(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(SITES))})"
        )
    return names


def _techniques_arg(text: str) -> tuple[str, ...]:
    from repro.repair import registry

    names = tuple(name.strip() for name in text.split(",") if name.strip())
    if not names:
        raise argparse.ArgumentTypeError("techniques list is empty")
    unknown = [name for name in names if not registry.is_registered(name)]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown technique(s): {', '.join(unknown)} "
            f"(registered: {', '.join(registry.names())})"
        )
    return names


def _add_experiment_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=_scale_arg,
        default=0.05,
        help="fraction of the Alloy4Fun benchmark to run (1.0 = full)",
    )
    parser.add_argument("--seed", type=_seed_arg, default=0)
    parser.add_argument(
        "--no-cache", action="store_true", help="ignore cached results"
    )
    parser.add_argument(
        "--fail-fast",
        action="store_true",
        help="abort on the first failing (spec, technique) cell instead of "
        "isolating it and continuing",
    )
    parser.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=1,
        help="parallel workers for the experiment engine (results are "
        "bit-identical to a serial run)",
    )
    parser.add_argument(
        "--executor",
        choices=["auto", "serial", "thread", "process"],
        default="auto",
        help="execution backend; auto = serial for --jobs 1, "
        "process pool otherwise",
    )
    parser.add_argument(
        "--techniques",
        type=_techniques_arg,
        default=None,
        metavar="A,B,...",
        help="comma-separated subset of registered techniques "
        "(default: all twelve standard techniques)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="capture spans and metrics for every executed cell and write "
        "a trace JSONL per benchmark (inspect with `repro trace` / "
        "`repro profile`); never changes results",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE.jsonl",
        help="trace file destination (implies --trace); multi-benchmark "
        "commands append the benchmark name to the stem",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print a one-line timing summary for every completed shard",
    )
    parser.add_argument(
        "--no-static-prune",
        action="store_true",
        help="disable the static type-based pruning of repair candidates "
        "(the ablation arm; pruned counts appear in `repro profile` as "
        "analysis.pruned_typed)",
    )
    parser.add_argument(
        "--no-incremental",
        action="store_true",
        help="evaluate every repair candidate from scratch instead of "
        "through the shared incremental solve session (the ablation arm; "
        "outcomes are bit-identical either way, only slower — compare "
        "repair.candidates/s in `repro profile`)",
    )
    parser.add_argument(
        "--no-canon",
        action="store_true",
        help="disable semantic candidate deduplication (the ablation arm; "
        "every candidate reaches the solver instead of replaying the "
        "cached verdict of its canonical equivalence class — outcomes are "
        "byte-identical either way, compare analysis.dedup_hits in "
        "`repro profile`)",
    )
    parser.add_argument(
        "--shard-timeout",
        type=_timeout_arg,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline per shard (one spec's cells); overdue "
        "shards record a shard.timeout failure and their pending cells "
        "are abandoned instead of blocking the run",
    )
    parser.add_argument(
        "--schedule",
        choices=["fifo", "longest-first"],
        default="fifo",
        help="shard ordering: fifo (benchmark order) or longest-first "
        "(order by historical per-spec cost from a prior --trace run; "
        "shortens parallel tail latency, never changes results)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Towards More Dependable Specifications' "
        "(DSN 2025): traditional vs. LLM-based Alloy repair.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser(
        "analyze",
        help="run a specification's commands and render its static "
        "analysis (dependency graph, command slices, cardinality "
        "findings)",
    )
    analyze.add_argument(
        "file",
        nargs="?",
        default=None,
        help="a .als file path or a registered ground-truth model name",
    )
    analyze.add_argument(
        "--all-models",
        action="store_true",
        help="static-only analysis of every registered ground-truth model "
        "(no commands are executed; exits non-zero on any A5xx finding)",
    )

    repair = sub.add_parser("repair", help="repair one faulty specification")
    repair.add_argument("file")
    repair.add_argument(
        "--technique",
        default="ATR",
        help="any registered technique: ATR, BeAFix, ARepair, ICEBAR, "
        "Single-Round_<setting>, Multi-Round_<feedback>, Dynamic",
    )
    repair.add_argument("--seed", type=int, default=0)
    repair.add_argument(
        "--no-static-prune",
        action="store_true",
        help="disable static type-based pruning of repair candidates",
    )
    repair.add_argument(
        "--no-incremental",
        action="store_true",
        help="evaluate candidates from scratch instead of through the "
        "shared incremental solve session",
    )
    repair.add_argument(
        "--no-canon",
        action="store_true",
        help="disable semantic candidate deduplication (solve every "
        "candidate instead of replaying canonical-class verdicts)",
    )

    lint = sub.add_parser(
        "lint",
        help="statically analyze specifications (type-based + structural "
        "lints with source positions)",
    )
    lint.add_argument(
        "targets",
        nargs="*",
        metavar="SPEC",
        help="a .als file path or a registered ground-truth model name",
    )
    lint.add_argument(
        "--all-models",
        action="store_true",
        help="lint every registered ground-truth model",
    )
    lint.add_argument(
        "--fail-on",
        choices=["error", "warning", "info"],
        default="error",
        help="minimum severity that makes the command exit non-zero "
        "(default: error)",
    )

    for name in ("table1", "figure2", "figure3", "hybrid", "all"):
        command = sub.add_parser(name, help=f"regenerate {name}")
        _add_experiment_args(command)

    stats = sub.add_parser("stats", help="describe a generated benchmark")
    stats.add_argument("benchmark", choices=["arepair", "alloy4fun"])
    stats.add_argument("--scale", type=_scale_arg, default=0.05)
    stats.add_argument("--seed", type=_seed_arg, default=0)

    ablations = sub.add_parser("ablations", help="run the ablation sweeps")
    ablations.add_argument("--samples", type=int, default=5)
    ablations.add_argument("--seed", type=_seed_arg, default=0)
    ablations.add_argument(
        "--parallel",
        action="store_true",
        help="also sweep experiment-engine parallelism (times a small "
        "matrix at --jobs 1/2/4)",
    )

    trace = sub.add_parser(
        "trace", help="summarize a trace JSONL: top spans, slowest cells"
    )
    trace.add_argument("trace_file", help="a trace written by --trace")
    trace.add_argument(
        "--top", type=int, default=12, help="rows per section (default 12)"
    )

    profile = sub.add_parser(
        "profile", help="per-technique metric rollup from trace files"
    )
    profile.add_argument(
        "trace_files", nargs="+", help="one or more traces written by --trace"
    )

    chaos = sub.add_parser(
        "chaos",
        help="deterministic fault-injection drills: verify that the "
        "resilience invariants hold under injected faults",
    )
    chaos.add_argument("--seed", type=_seed_arg, default=0)
    chaos.add_argument(
        "--sites",
        type=_sites_arg,
        default=None,
        metavar="A,B,... | all",
        help="comma-separated injection sites to exercise (default: all)",
    )
    chaos.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=2,
        help="parallel workers for the thread/process equivalence runs",
    )
    chaos.add_argument("--scale", type=_scale_arg, default=0.05)
    chaos.add_argument(
        "--report",
        default=None,
        metavar="FILE.json",
        help="where to write the JSON report (deterministic bytes: two "
        "same-seed runs produce identical files); default "
        "chaos-report.json, or service-chaos-report.json with --service",
    )
    chaos.add_argument(
        "--list-sites",
        action="store_true",
        help="print the known injection sites and exit",
    )
    chaos.add_argument(
        "--service",
        action="store_true",
        help="drill the live service daemon instead of the batch engine: "
        "availability under all injection sites, backpressure, circuit "
        "breakers, drain/resume (report defaults to "
        "service-chaos-report.json)",
    )
    chaos.add_argument(
        "--cluster",
        action="store_true",
        help="drill a replicated service tier: kill -9 a random replica "
        "mid-job under the full fault plan and assert zero lost jobs, no "
        "double commits, and fencing monotonicity (report defaults to "
        "cluster-chaos-report.json)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the repair service daemon: a job API over a local unix "
        "socket, backed by the experiment engine (drain with SIGTERM)",
    )
    serve.add_argument(
        "--socket", default="repro.sock", help="unix socket path to listen on"
    )
    serve.add_argument(
        "--benchmark", choices=["arepair", "alloy4fun"], default="arepair"
    )
    serve.add_argument(
        "--scale",
        type=_scale_arg,
        default=None,
        help="corpus scale; default: the benchmark's full service corpus "
        "(1.0 for arepair, 0.05 for alloy4fun)",
    )
    serve.add_argument("--seed", type=_seed_arg, default=0)
    serve.add_argument(
        "--workers", type=_jobs_arg, default=2, help="warm worker threads"
    )
    serve.add_argument(
        "--max-queue",
        type=_jobs_arg,
        default=64,
        help="queued-job bound; submissions beyond it are rejected with a "
        "retry_after hint",
    )
    serve.add_argument(
        "--bucket-capacity",
        type=float,
        default=8.0,
        help="per-tenant token bucket size",
    )
    serve.add_argument(
        "--bucket-refill",
        type=float,
        default=4.0,
        help="per-tenant tokens refilled per second",
    )
    serve.add_argument(
        "--job-timeout",
        type=_timeout_arg,
        default=30.0,
        metavar="SECONDS",
        help="per-job deadline (shard_timeout semantics); 0 via "
        "--no-job-timeout",
    )
    serve.add_argument(
        "--no-job-timeout",
        action="store_true",
        help="disable the per-job deadline (and the wedge watchdog)",
    )
    serve.add_argument(
        "--state",
        default=None,
        metavar="FILE.json",
        help="drain checkpoint path (default: <socket>.state.json)",
    )
    serve.add_argument(
        "--no-store",
        action="store_true",
        help="do not persist completed cells to the incremental result "
        "store (disables restart resume of finished work)",
    )
    serve.add_argument(
        "--no-static-prune",
        action="store_true",
        help="disable static type-based pruning in job executions",
    )
    serve.add_argument(
        "--no-incremental",
        action="store_true",
        help="evaluate candidates from scratch in job executions instead "
        "of through the shared incremental solve session",
    )
    serve.add_argument(
        "--no-canon",
        action="store_true",
        help="disable semantic candidate deduplication in job executions",
    )
    serve.add_argument(
        "--cluster-dir",
        default=None,
        metavar="DIR",
        help="shared cluster directory: run this daemon as one replica of "
        "a fleet (ledger-journaled jobs, fenced leases, shared store, "
        "durable cluster-wide quotas)",
    )
    serve.add_argument(
        "--replica-id",
        default=None,
        metavar="NAME",
        help="this replica's name in the cluster (default: r<pid>)",
    )
    serve.add_argument(
        "--lease-ttl",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="lease lifetime without renewal before peers adopt the job",
    )
    serve.add_argument(
        "--heartbeat",
        type=float,
        default=None,
        metavar="SECONDS",
        help="lease renewal interval (default: lease-ttl / 3)",
    )
    serve.add_argument(
        "--chaos-plan",
        default=None,
        metavar="FILE.json",
        help="install a serialized fault plan (FaultPlan.to_json) around "
        "job executions and store flushes — how the cluster drill ships "
        "one plan to every subprocess replica",
    )

    submit = sub.add_parser(
        "submit", help="submit one repair job to a running service daemon"
    )
    submit.add_argument(
        "--socket",
        default="repro.sock",
        help="daemon socket; a comma-separated list enables failover "
        "across replicas",
    )
    submit.add_argument(
        "--retry-seed",
        type=_seed_arg,
        default=0,
        help="seed for the deterministic reconnect/failover backoff jitter",
    )
    submit.add_argument(
        "--spec",
        default=None,
        metavar="SPEC_ID",
        help="a spec id from the daemon's benchmark corpus",
    )
    submit.add_argument(
        "--file",
        default=None,
        metavar="FILE.als",
        help="submit an ad-hoc specification file instead of a corpus spec",
    )
    submit.add_argument(
        "--benchmark",
        choices=["arepair", "alloy4fun"],
        default="arepair",
        help="corpus the spec id belongs to (ignored with --file)",
    )
    submit.add_argument(
        "--techniques",
        type=_techniques_arg,
        default=("ATR",),
        metavar="A,B,...",
    )
    submit.add_argument("--seed", type=_seed_arg, default=0)
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument(
        "--no-watch",
        action="store_true",
        help="return after the ack instead of streaming events until the "
        "job finishes",
    )
    submit.add_argument(
        "--no-retry",
        action="store_true",
        help="give up on the first rejection instead of honoring the "
        "retry_after backpressure hints",
    )

    jobs = sub.add_parser(
        "jobs", help="list a running daemon's jobs (or --stats)"
    )
    jobs.add_argument(
        "--socket",
        default="repro.sock",
        help="daemon socket; a comma-separated list enables failover "
        "across replicas",
    )
    jobs.add_argument(
        "--retry-seed",
        type=_seed_arg,
        default=0,
        help="seed for the deterministic reconnect/failover backoff jitter",
    )
    jobs.add_argument(
        "--stats",
        action="store_true",
        help="print service statistics (queues, breakers, latency) instead",
    )

    loadgen = sub.add_parser(
        "loadgen",
        help="load-test the service: host a daemon, drive a fleet of "
        "concurrent synthetic clients, report the availability ledger",
    )
    loadgen.add_argument("--clients", type=_jobs_arg, default=50)
    loadgen.add_argument("--jobs-per-client", type=_jobs_arg, default=2)
    loadgen.add_argument(
        "--benchmark", choices=["arepair", "alloy4fun"], default="arepair"
    )
    loadgen.add_argument(
        "--scale",
        type=_scale_arg,
        default=0.05,
        help="corpus scale for the hosted daemon(s)",
    )
    loadgen.add_argument("--seed", type=_seed_arg, default=0)
    loadgen.add_argument("--workers", type=_jobs_arg, default=4)
    loadgen.add_argument("--max-queue", type=_jobs_arg, default=16)
    loadgen.add_argument(
        "--techniques", type=_techniques_arg, default=None, metavar="A,B,..."
    )
    loadgen.add_argument(
        "--replicas",
        type=_jobs_arg,
        default=1,
        help="host this many daemon replicas against a shared cluster "
        "directory and spread the client fleet across their sockets",
    )

    sub.add_parser("validate-corpus", help="check the ground-truth models")
    return parser


def _print_static_analysis(source: str) -> int:
    """The static section of ``repro analyze``: dependency-graph shape,
    one backward slice per command, and the A5xx cardinality findings.
    Returns the number of findings so ``--all-models`` can gate on it."""
    from repro.alloy.parser import parse_module
    from repro.alloy.resolver import resolve_module
    from repro.analysis import (
        build_depgraph,
        backward_slice,
        lint_module,
        render_diagnostics,
    )
    from repro.analysis.slice import render_slice

    module = parse_module(source)
    info = resolve_module(module)
    graph = build_depgraph(module, info)
    stats = graph.stats()
    counts = ", ".join(
        f"{stats[kind]} {kind}" for kind in
        ("sig", "field", "fact", "pred", "fun", "assert", "command")
        if stats[kind]
    )
    print(f"dependency graph: {counts}; {stats['edges']} edges")
    groups = graph.recursion_groups()
    if groups:
        rendered = "; ".join(
            ", ".join(str(member) for member in group) for group in groups
        )
        print(f"recursion groups: {rendered}")
    for node in graph.nodes:
        if node.kind != "command":
            continue
        cone = backward_slice(graph, node)
        print(f"slice[{node.name}]: {render_slice(cone, root=node)}")
    findings = [d for d in lint_module(module, info) if d.code.startswith("A5")]
    if findings:
        print("cardinality findings:")
        print(render_diagnostics(findings))
    else:
        print("cardinality findings: none")
    return len(findings)


def _cmd_analyze(args) -> int:
    import os

    from repro.analyzer import Analyzer
    from repro.benchmarks.models import registry as model_registry

    if args.all_models:
        # Corpus sweep: static analysis only (running every model's
        # commands is the analyzer's job, not a lint gate's).
        flagged = 0
        for model in model_registry.all_models():
            print(f"== {model.name}")
            flagged += _print_static_analysis(model.source)
        if flagged:
            print(f"{flagged} cardinality finding(s)", file=sys.stderr)
            return EXIT_FAILURE
        return EXIT_OK
    if args.file is None:
        print(
            "error: pass a spec or --all-models", file=sys.stderr
        )
        return EXIT_USAGE
    if os.path.exists(args.file):
        with open(args.file) as handle:
            source = handle.read()
    else:
        try:
            source = model_registry.get_model(args.file).source
        except KeyError:
            print(
                f"error: {args.file!r}: no such file or registered model",
                file=sys.stderr,
            )
            return EXIT_INPUT
    analyzer = Analyzer(source)
    for result in analyzer.execute_all():
        marker = "" if result.meets_expectation else "  (UNEXPECTED)"
        print(f"{result.kind} {result.name}: {'SAT' if result.sat else 'UNSAT'}{marker}")
        if result.instance is not None:
            print(result.instance.describe(analyzer.info))
    print()
    _print_static_analysis(source)
    return EXIT_OK


def _cmd_repair(args) -> int:
    from pathlib import Path

    from repro.benchmarks.faults import FaultySpec
    from repro.llm.prompts import RepairHints
    from repro.repair import RepairTask, registry

    with open(args.file) as handle:
        source = handle.read()
    task = RepairTask.from_source(source)
    technique = args.technique
    # An ad-hoc file has no separate ground truth and no curated hints:
    # the spec doubles as its own oracle source (suite generation reads
    # truth_source), hints stay empty.
    name = Path(args.file).stem
    spec = FaultySpec(
        spec_id=name,
        benchmark="adhoc",
        domain="adhoc",
        model_name=name,
        faulty_source=source,
        truth_source=source,
        fault_description="",
        depth=0,
        hints=RepairHints(),
    )
    try:
        tool = registry.create(technique, spec, args.seed)
    except ValueError:
        print(f"unknown technique {technique!r}", file=sys.stderr)
        return 2
    from repro.analysis import canonicalizing, pruning, verdict_sharing
    from repro.analyzer.session import incremental

    # verdict_sharing lets composite techniques (ICEBAR, the selector)
    # replay evidence and verdicts across their inner tools' oracles.
    with pruning(not args.no_static_prune), incremental(
        not args.no_incremental
    ), canonicalizing(not args.no_canon), verdict_sharing():
        result = tool.repair(task)
    print(f"status: {result.status.value} ({result.detail})")
    if result.candidate_source:
        print(result.candidate_source)
    return 0


def _matrices(args):
    from repro.experiments import ConsoleListener, RunConfig, run_matrix
    from repro.experiments.runner import derive_trace_out

    listener = ConsoleListener(verbose=getattr(args, "verbose", False))
    fail_fast = getattr(args, "fail_fast", False)
    trace = getattr(args, "trace", False)
    trace_out = getattr(args, "trace_out", None)
    common = dict(
        seed=args.seed,
        techniques=args.techniques,
        jobs=args.jobs,
        executor=args.executor,
        use_cache=not args.no_cache,
        fail_fast=fail_fast,
        listener=listener,
        static_prune=not getattr(args, "no_static_prune", False),
        incremental=not getattr(args, "no_incremental", False),
        canonical=not getattr(args, "no_canon", False),
        shard_timeout=getattr(args, "shard_timeout", None),
        schedule=getattr(args, "schedule", "fifo"),
    )
    matrices = []
    for benchmark, scale in (("arepair", 1.0), ("alloy4fun", args.scale)):
        matrix = run_matrix(
            RunConfig(
                benchmark=benchmark,
                scale=scale,
                trace=trace,
                trace_out=derive_trace_out(trace_out, trace, benchmark, args.seed),
                **common,
            )
        )
        if matrix.telemetry is not None:
            print(
                f"  [{benchmark}] trace written to "
                f"{matrix.telemetry['trace_path']}",
                file=sys.stderr,
            )
        elif trace or trace_out:
            print(
                f"  [{benchmark}] fully cached run: nothing executed, no "
                f"trace written (re-run with --no-cache to trace)",
                file=sys.stderr,
            )
        matrices.append(matrix)
    return tuple(matrices)


def _cmd_experiment(args) -> int:
    from repro.experiments import (
        compute_figure2,
        compute_figure3,
        compute_hybrid,
        compute_table1,
        generate_report,
        render_figure2,
        render_figure3,
        render_figure4,
        render_table1,
        render_table2,
    )

    if args.command == "all":
        report = generate_report(
            scale=args.scale,
            seed=args.seed,
            use_cache=not args.no_cache,
            progress=True,
            fail_fast=args.fail_fast,
            jobs=args.jobs,
            executor=args.executor,
            trace=args.trace,
            trace_out=args.trace_out,
            verbose=args.verbose,
            static_prune=not args.no_static_prune,
            incremental=not args.no_incremental,
            canonical=not args.no_canon,
            shard_timeout=args.shard_timeout,
            schedule=args.schedule,
        )
        print(report.text)
        with open("EXPERIMENTS-report.txt", "w") as handle:
            handle.write(report.text + "\n")
        print("\n(written to EXPERIMENTS-report.txt)")
        return 0

    arepair, alloy4fun = _matrices(args)
    techniques = list(args.techniques) if args.techniques else None
    sections: list[str] = []
    if args.command in ("table1", "all"):
        sections.append(
            render_table1(compute_table1(arepair, alloy4fun, techniques))
        )
    if args.command in ("figure2", "all"):
        sections.append(
            render_figure2(compute_figure2([arepair, alloy4fun], techniques))
        )
    if args.command in ("figure3", "all"):
        sections.append(
            render_figure3(compute_figure3([arepair, alloy4fun], techniques))
        )
    if args.command in ("hybrid", "all"):
        analysis = compute_hybrid([arepair, alloy4fun])
        sections.append(render_table2(analysis))
        sections.append(render_figure4(analysis))
    report = "\n\n".join(sections)
    print(report)
    return 0


def _cmd_stats(args) -> int:
    from repro.benchmarks import load_benchmark, render_stats, summarize

    scale = args.scale if args.benchmark == "alloy4fun" else 1.0
    specs = load_benchmark(args.benchmark, seed=args.seed, scale=scale)
    print(render_stats(summarize(specs), f"{args.benchmark} benchmark"))
    return 0


def _cmd_ablations(args) -> int:
    from repro.benchmarks import load_benchmark
    from repro.experiments.ablations import (
        beafix_pruning_ablation,
        icebar_budget_ablation,
        multi_round_budget_ablation,
        parallel_speedup_ablation,
        suite_size_ablation,
    )

    specs = load_benchmark("alloy4fun", seed=args.seed, scale=0.02)
    sample = specs[: args.samples]
    sweeps = [
        beafix_pruning_ablation(sample),
        icebar_budget_ablation(sample),
        multi_round_budget_ablation(sample, seed=args.seed),
        suite_size_ablation(sample),
    ]
    if args.parallel:
        sweeps.append(parallel_speedup_ablation(seed=args.seed))
    for sweep in sweeps:
        print(sweep.render())
        print()
    return 0


def _cmd_trace(args) -> int:
    from pathlib import Path

    from repro.obs.export import read_trace, render_trace

    print(render_trace(read_trace(Path(args.trace_file)), top=args.top))
    return 0


def _cmd_profile(args) -> int:
    from pathlib import Path

    from repro.obs.export import merge_trace_data, read_trace, render_profile

    data = merge_trace_data(
        [read_trace(Path(f)) for f in args.trace_files]
    )
    print(render_profile(data))
    return 0


def _cmd_lint(args) -> int:
    import os

    from repro.analysis import Severity, lint_source, render_diagnostics
    from repro.benchmarks.models import registry as model_registry

    threshold = Severity.parse(args.fail_on)
    targets: list[tuple[str, str]] = []  # (display name, source)
    if args.all_models:
        for model in model_registry.all_models():
            targets.append((model.name, model.source))
    for target in args.targets:
        if os.path.exists(target):
            with open(target) as handle:
                targets.append((target, handle.read()))
            continue
        try:
            model = model_registry.get_model(target)
        except KeyError:
            print(
                f"error: {target!r} is neither a file nor a registered "
                f"model", file=sys.stderr,
            )
            return EXIT_INPUT
        targets.append((model.name, model.source))
    if not targets:
        print("error: nothing to lint (pass a spec or --all-models)",
              file=sys.stderr)
        return EXIT_USAGE
    failing = 0
    for name, source in targets:
        diagnostics = lint_source(source)
        print(f"== {name}")
        print(render_diagnostics(diagnostics))
        failing += sum(1 for d in diagnostics if d.severity >= threshold)
    if failing:
        print(
            f"{failing} finding(s) at or above --fail-on={args.fail_on}",
            file=sys.stderr,
        )
        return EXIT_FAILURE
    return EXIT_OK


def _cmd_validate_corpus() -> int:
    from repro.benchmarks import validate_corpus

    problems = validate_corpus()
    if problems:
        for problem in problems:
            print(problem)
        return 1
    print("corpus OK: every model meets its command expectations")
    return 0


def _cmd_chaos(args) -> int:
    from pathlib import Path

    from repro.chaos import SITES
    from repro.chaos.harness import render_report, run_drills, write_report

    if args.list_sites:
        width = max(len(name) for name in SITES)
        for name in sorted(SITES):
            print(f"{name:<{width}}  {SITES[name]}")
        return EXIT_OK
    if args.cluster:
        from repro.service.drill import (
            render_cluster_report,
            run_cluster_drills,
        )

        report = run_cluster_drills(
            seed=args.seed, sites=args.sites, scale=args.scale
        )
        report_path = args.report or "cluster-chaos-report.json"
        write_report(Path(report_path), report)
        print(render_cluster_report(report))
        print(f"(report written to {report_path})", file=sys.stderr)
        return EXIT_OK if report["ok"] else EXIT_FAILURE
    if args.service:
        from repro.service.drill import (
            render_service_report,
            run_service_drills,
        )

        report = run_service_drills(
            seed=args.seed, sites=args.sites, scale=args.scale
        )
        report_path = args.report or "service-chaos-report.json"
        write_report(Path(report_path), report)
        print(render_service_report(report))
        print(f"(report written to {report_path})", file=sys.stderr)
        return EXIT_OK if report["ok"] else EXIT_FAILURE
    report = run_drills(
        seed=args.seed, sites=args.sites, jobs=args.jobs, scale=args.scale
    )
    report_path = args.report or "chaos-report.json"
    write_report(Path(report_path), report)
    print(render_report(report))
    print(f"(report written to {report_path})", file=sys.stderr)
    return EXIT_OK if report["ok"] else EXIT_FAILURE


def _service_scale(scale, benchmark: str) -> float:
    """An explicit ``--scale`` is honored for either benchmark; the
    default is the benchmark's full service corpus (all of arepair, the
    standard 5% slice of alloy4fun)."""
    if scale is not None:
        return scale
    return 0.05 if benchmark == "alloy4fun" else 1.0


def _load_chaos_plan(path: str | None):
    if path is None:
        return None
    import json
    from pathlib import Path

    from repro.chaos.plan import FaultPlan

    return FaultPlan.from_json(json.loads(Path(path).read_text()))


def _service_config(args):
    from repro.service.daemon import ServiceConfig

    job_timeout = None if args.no_job_timeout else args.job_timeout
    return ServiceConfig(
        socket=args.socket,
        benchmark=args.benchmark,
        scale=_service_scale(args.scale, args.benchmark),
        seed=args.seed,
        workers=args.workers,
        max_queue=args.max_queue,
        bucket_capacity=args.bucket_capacity,
        bucket_refill=args.bucket_refill,
        job_timeout=job_timeout,
        state_path=args.state,
        use_store=not args.no_store,
        static_prune=not args.no_static_prune,
        incremental=not args.no_incremental,
        canonical=not args.no_canon,
        chaos=_load_chaos_plan(args.chaos_plan),
        cluster_dir=args.cluster_dir,
        replica_id=args.replica_id,
        lease_ttl=args.lease_ttl,
        lease_heartbeat=args.heartbeat,
    )


def _cmd_serve(args) -> int:
    import asyncio

    from repro.service.daemon import ReproService

    service = ReproService(_service_config(args))
    print(
        f"repro service: benchmark={args.benchmark} "
        f"specs={len(service.jobs_corpus_ids())} workers={args.workers} "
        f"socket={args.socket}",
        file=sys.stderr,
    )
    if service.resumed_jobs:
        print(
            f"  resuming {service.resumed_jobs} checkpointed job(s)",
            file=sys.stderr,
        )
    # serve() runs on the main thread so SIGTERM/SIGINT reach the loop's
    # handlers and trigger a graceful drain + checkpoint.
    asyncio.run(service.serve())
    print("repro service: drained", file=sys.stderr)
    return EXIT_OK


def _cmd_submit(args) -> int:
    from pathlib import Path

    from repro.service.client import ServiceClient
    from repro.service.protocol import JobSpec

    if (args.spec is None) == (args.file is None):
        print("error: pass exactly one of --spec or --file", file=sys.stderr)
        return EXIT_USAGE
    if args.file is not None:
        source = Path(args.file).read_text()
        spec = JobSpec(
            benchmark="adhoc",
            spec_id=Path(args.file).stem,
            techniques=args.techniques,
            seed=args.seed,
            tenant=args.tenant,
            priority=args.priority,
            source=source,
        )
    else:
        spec = JobSpec(
            benchmark=args.benchmark,
            spec_id=args.spec,
            techniques=args.techniques,
            seed=args.seed,
            tenant=args.tenant,
            priority=args.priority,
        )
    client = ServiceClient(
        [s for s in args.socket.split(",") if s], retry_seed=args.retry_seed
    )
    if args.no_retry:
        outcome = client.submit(spec, watch=not args.no_watch)
    else:
        outcome = client.submit_retrying(spec, watch=not args.no_watch)
    if not outcome.accepted:
        last = outcome.rejections[-1] if outcome.rejections else {}
        print(
            f"rejected: {last.get('reason', '?')} "
            f"(retry_after {last.get('retry_after', '?')}s, "
            f"{len(outcome.rejections)} attempt(s))",
            file=sys.stderr,
        )
        return EXIT_FAILURE
    print(f"job {outcome.job_id}: {outcome.state}")
    if args.no_watch:
        return EXIT_OK
    for technique, cell in sorted(outcome.outcomes.items()):
        line = (
            f"  {technique}: {cell.get('status')} rep={cell.get('rep')} "
            f"tm={cell.get('tm', 0):.3f} sm={cell.get('sm', 0):.3f}"
        )
        if cell.get("error_code"):
            line += f" [{cell['error_code']}]"
        print(line)
    if outcome.from_store:
        print("  (served from the result store)")
    if outcome.error:
        print(f"  error: {outcome.error}", file=sys.stderr)
    return EXIT_OK if outcome.state == "done" else EXIT_FAILURE


def _cmd_jobs(args) -> int:
    import json

    from repro.service.client import ServiceClient

    client = ServiceClient(
        [s for s in args.socket.split(",") if s], retry_seed=args.retry_seed
    )
    if args.stats:
        print(json.dumps(client.stats(), indent=2, sort_keys=True))
        return EXIT_OK
    jobs = client.jobs()
    if not jobs:
        print("no jobs")
        return EXIT_OK
    for job in jobs:
        star = "*" if job.get("from_store") else " "
        print(
            f"{job['job_id']}  {job['state']:<8} {star} "
            f"{job['benchmark']}/{job['spec_id']} "
            f"[{','.join(job['techniques'])}] tenant={job['tenant']}"
        )
    return EXIT_OK


def _cmd_loadgen(args) -> int:
    import json
    import tempfile
    from pathlib import Path

    from repro.service.daemon import ServiceConfig
    from repro.service.loadgen import DEFAULT_TECHNIQUES, run_load

    with tempfile.TemporaryDirectory(prefix="repro-loadgen-") as tmp:
        ledger = run_load(
            ServiceConfig(
                socket=str(Path(tmp) / "loadgen.sock"),
                benchmark=args.benchmark,
                scale=args.scale if args.benchmark == "alloy4fun" else 1.0,
                seed=args.seed,
                workers=args.workers,
                max_queue=args.max_queue,
                job_timeout=None,
                state_path=str(Path(tmp) / "loadgen.state.json"),
            ),
            clients=args.clients,
            jobs_per_client=args.jobs_per_client,
            techniques=args.techniques or DEFAULT_TECHNIQUES,
            replicas=args.replicas,
        )
    print(json.dumps(ledger, indent=2, sort_keys=True))
    return EXIT_OK if ledger["ok"] else EXIT_FAILURE


def _dispatch(args) -> int:
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "repair":
        return _cmd_repair(args)
    if args.command == "validate-corpus":
        return _cmd_validate_corpus()
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "ablations":
        return _cmd_ablations(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "jobs":
        return _cmd_jobs(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    return _cmd_experiment(args)


def main(argv: list[str] | None = None) -> int:
    from repro.alloy.errors import AlloyError
    from repro.runtime.errors import ReproError, classify_exception

    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: conventional silent exit.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return EXIT_OK
    except FileNotFoundError as error:
        print(f"error: no such file: {error.filename or error}", file=sys.stderr)
        return EXIT_INPUT
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_INPUT
    except AlloyError as error:
        print(f"specification error: {error}", file=sys.stderr)
        return EXIT_INPUT
    except ReproError as error:
        print(f"error [{error.code}]: {error}", file=sys.stderr)
        return EXIT_INPUT
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except Exception as error:  # the last-resort guard: no tracebacks to users
        print(
            f"internal error [{classify_exception(error)}]: {error}",
            file=sys.stderr,
        )
        return EXIT_INTERNAL


if __name__ == "__main__":
    sys.exit(main())
