"""Shared fixtures for the benchmark harness.

The experiment *matrices* (running all 12 techniques over the benchmark
specifications) are built once per session — they are the expensive part and
are disk-cached under ``.repro_cache``.  The per-table benchmarks then time
the projection/rendering of each paper artifact and print the regenerated
rows.

``REPRO_BENCH_SCALE`` (default 0.02) controls the Alloy4Fun sample used by
the benchmark harness; set it to 1.0 to regenerate the paper-sized run.
``REPRO_BENCH_JOBS`` (default 1) fans the matrix out over that many
workers — results are identical, only wall-clock changes.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.progress import ConsoleListener
from repro.experiments.runner import RunConfig, run_matrix

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


@pytest.fixture(scope="session")
def arepair_matrix():
    """The full ARepair-benchmark matrix (38 specs × 12 techniques)."""
    return run_matrix(
        RunConfig(
            benchmark="arepair", scale=1.0, seed=BENCH_SEED,
            jobs=BENCH_JOBS, listener=ConsoleListener(),
        )
    )


@pytest.fixture(scope="session")
def alloy4fun_matrix():
    """A scaled Alloy4Fun matrix (``REPRO_BENCH_SCALE`` of 1,936 specs)."""
    return run_matrix(
        RunConfig(
            benchmark="alloy4fun", scale=BENCH_SCALE, seed=BENCH_SEED,
            jobs=BENCH_JOBS, listener=ConsoleListener(),
        )
    )


@pytest.fixture(scope="session")
def matrices(arepair_matrix, alloy4fun_matrix):
    return [arepair_matrix, alloy4fun_matrix]
