"""Regenerates Figure 2 (TM/SM similarity to ground truth per technique)."""

from repro.experiments.figure2 import compute_figure2, render_figure2


def test_figure2(benchmark, matrices):
    figure = benchmark(compute_figure2, matrices)
    print()
    print(render_figure2(figure))

    # All similarity means are valid proportions.
    for technique, value in figure.tm.items():
        assert 0.0 <= value <= 1.0, technique
    for technique, value in figure.sm.items():
        assert 0.0 <= value <= 1.0, technique

    # Finding 2: traditional tools keep high structural fidelity; the best
    # traditional SM is at least as high as the best single-round SM.
    traditional = ["ARepair", "ICEBAR", "BeAFix", "ATR"]
    single_round = [t for t in figure.sm if t.startswith("Single-Round")]
    assert max(figure.sm[t] for t in traditional) >= max(
        figure.sm[t] for t in single_round
    )

    # SM >= TM for most techniques (structure survives better than tokens,
    # as reported in the paper).
    sm_wins = sum(1 for t in figure.sm if figure.sm[t] >= figure.tm[t])
    assert sm_wins >= len(figure.sm) // 2
