"""Microbenchmarks of the substrates: SAT solver, analyzer, metrics.

These are not paper artifacts; they track the performance of the layers the
study platform is built on.
"""

import random

from repro.analyzer.analyzer import Analyzer
from repro.benchmarks.models import get_model
from repro.metrics.bleu import token_match
from repro.metrics.syntax_match import syntax_match
from repro.sat.solver import SatSolver


def _random_3sat(num_vars: int, num_clauses: int, seed: int):
    rng = random.Random(seed)
    return [
        [rng.choice([1, -1]) * rng.randint(1, num_vars) for _ in range(3)]
        for _ in range(num_clauses)
    ]


def test_sat_random_3sat(benchmark):
    clauses = _random_3sat(60, 240, seed=1)

    def solve():
        solver = SatSolver()
        for _ in range(60):
            solver.new_var()
        for clause in clauses:
            solver.add_clause(clause)
        return solver.solve()

    benchmark(solve)


def test_sat_pigeonhole(benchmark):
    holes, pigeons = 5, 6

    def solve():
        solver = SatSolver()

        def var(p, h):
            return p * holes + h + 1

        for _ in range(pigeons * holes):
            solver.new_var()
        for p in range(pigeons):
            solver.add_clause([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        return solver.solve()

    assert benchmark(solve) is False


def test_analyzer_corpus_model(benchmark):
    source = get_model("classroom_a").source

    def analyze():
        return [r.sat for r in Analyzer(source).execute_all()]

    outcomes = benchmark(analyze)
    assert outcomes == [True, True, False, False]


def test_analyzer_enumeration(benchmark):
    source = get_model("graphs_a").source

    def enumerate_instances():
        analyzer = Analyzer(source)
        command = analyzer.info.commands[0]
        return len(analyzer.run_command(command, max_instances=25).instances)

    assert benchmark(enumerate_instances) > 0


def test_metric_token_match(benchmark):
    truth = get_model("farmer").source
    candidate = truth.replace("Chicken", "Hen")
    score = benchmark(token_match, candidate, truth)
    assert 0.0 < score < 1.0


def test_metric_syntax_match(benchmark):
    truth = get_model("farmer").source
    candidate = truth.replace("c.near", "c.far", 1)
    score = benchmark(syntax_match, candidate, truth)
    assert 0.0 < score < 1.0
