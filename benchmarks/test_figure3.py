"""Regenerates Figure 3 (Pearson correlation heatmap between techniques)."""

from repro.experiments.figure3 import compute_figure3, render_figure3


def test_figure3(benchmark, matrices):
    figure = benchmark(compute_figure3, matrices)
    print()
    print(render_figure3(figure))

    traditional = ["ARepair", "ICEBAR", "BeAFix", "ATR"]
    multi = ["Multi-Round_None", "Multi-Round_Generic", "Multi-Round_Auto"]
    single = [
        "Single-Round_Loc+Fix",
        "Single-Round_Loc",
        "Single-Round_Pass",
        "Single-Round_None",
        "Single-Round_Loc+Pass",
    ]

    # Self correlations are exactly 1.
    for technique in traditional + multi + single:
        assert figure.r(technique, technique) == 1.0

    # Symmetry of the heatmap.
    assert figure.r("ATR", "ICEBAR") == figure.r("ICEBAR", "ATR")

    # Finding 3's structure: the traditional cluster is more tightly
    # correlated than single-round techniques are with the traditional ones.
    traditional_min = figure.cluster_min(traditional)
    cross_min = figure.cross_cluster_min(single, traditional)
    assert traditional_min >= cross_min

    # Multi-round settings correlate with each other at least as strongly as
    # they do with single-round settings.
    multi_min = figure.cluster_min(multi)
    assert multi_min >= figure.cross_cluster_min(multi, single)
