"""Regenerates Table I (REP counts per technique per benchmark/domain).

The benchmark times the table computation from the session matrices and
prints the regenerated rows alongside the paper's (scaled) summary.  Shape
assertions encode the paper's findings rather than absolute numbers.
"""

from repro.experiments.table1 import compute_table1, render_table1


def test_table1(benchmark, arepair_matrix, alloy4fun_matrix):
    table = benchmark(compute_table1, arepair_matrix, alloy4fun_matrix)
    print()
    print(render_table1(table))

    arepair = table.summary(arepair_matrix)
    alloy4fun = table.summary(alloy4fun_matrix)

    # Finding 1 (ARepair benchmark): multi-round approaches sit at the top;
    # the best multi-round setting beats every traditional tool.
    best_multi = max(
        arepair["Multi-Round_None"],
        arepair["Multi-Round_Generic"],
        arepair["Multi-Round_Auto"],
    )
    best_traditional = max(
        arepair["ARepair"], arepair["ICEBAR"], arepair["BeAFix"], arepair["ATR"]
    )
    assert best_multi >= best_traditional

    # ARepair performs the worst among the traditional tools on both
    # benchmarks (its hallmark overfitting).
    for matrix_summary in (arepair, alloy4fun):
        assert matrix_summary["ARepair"] <= matrix_summary["ICEBAR"]
        assert matrix_summary["ARepair"] <= matrix_summary["BeAFix"]
        assert matrix_summary["ARepair"] <= matrix_summary["ATR"]

    # Single-Round_None is the weakest prompt setting on both benchmarks.
    single_round = [
        "Single-Round_Loc+Fix",
        "Single-Round_Loc",
        "Single-Round_Pass",
        "Single-Round_Loc+Pass",
    ]
    assert alloy4fun["Single-Round_None"] <= min(
        alloy4fun[name] for name in single_round
    )

    # Multi-round dominates single-round overall (Finding 1).
    total_multi = sum(
        arepair[f"Multi-Round_{k}"] + alloy4fun[f"Multi-Round_{k}"]
        for k in ("None", "Generic", "Auto")
    )
    total_single = sum(
        arepair[name] + alloy4fun[name]
        for name in single_round + ["Single-Round_None"]
    )
    assert total_multi / 3 > total_single / 5
