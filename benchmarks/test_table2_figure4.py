"""Regenerates Table II and Figure 4 (hybrid traditional + LLM combinations)."""

from repro.experiments.hybrid import compute_hybrid, render_figure4, render_table2
from repro.experiments.runner import MULTI_ROUND, SINGLE_ROUND, TRADITIONAL


def test_table2_and_figure4(benchmark, matrices):
    analysis = benchmark(compute_hybrid, matrices)
    print()
    print(render_table2(analysis))
    print()
    print(render_figure4(analysis))

    # All 32 pairings are present (4 traditional × 8 LLM settings).
    assert len(analysis.cells) == len(TRADITIONAL) * (
        len(SINGLE_ROUND) + len(MULTI_ROUND)
    )

    # Hybrids never repair fewer than their stronger constituent.
    for cell in analysis.cells.values():
        assert cell.union >= max(cell.traditional_repairs, cell.llm_repairs)
        assert cell.overlap <= min(cell.traditional_repairs, cell.llm_repairs)

    # RQ3 headline shape: the best hybrid pairs a traditional tool with a
    # multi-round setting, and beats the best single technique.
    best = analysis.best()
    assert best.llm in MULTI_ROUND

    best_single_technique = max(
        max(cell.traditional_repairs for cell in analysis.cells.values()),
        max(cell.llm_repairs for cell in analysis.cells.values()),
    )
    assert best.union >= best_single_technique

    # Multi-round hybrids beat the corresponding single-round hybrids for
    # each traditional partner (on union size, averaged).
    for traditional in TRADITIONAL:
        multi_avg = sum(
            analysis.cells[(traditional, llm)].union for llm in MULTI_ROUND
        ) / len(MULTI_ROUND)
        single_avg = sum(
            analysis.cells[(traditional, llm)].union for llm in SINGLE_ROUND
        ) / len(SINGLE_ROUND)
        assert multi_avg >= single_avg
