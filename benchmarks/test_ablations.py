"""Ablation benchmarks for the design choices DESIGN.md calls out.

- BeAFix with vs. without semantic pruning (search-cost impact),
- ICEBAR refinement-budget sweep (success vs. iterations),
- Multi-round round-budget sweep (success vs. rounds).
"""

import pytest

from repro.analyzer.analyzer import Analyzer
from repro.benchmarks.models import get_model
from repro.llm.mock_gpt import GPT4_PROFILE, MockGPT
from repro.llm.prompts import FeedbackLevel
from repro.metrics.rep import rep
from repro.repair.base import RepairTask
from repro.repair.beafix import BeAFix, BeAFixConfig
from repro.repair.icebar import Icebar, IcebarConfig
from repro.repair.multi_round import MultiRoundConfig, MultiRoundLLM
from repro.testing.generation import generate_suite

TRUTH = get_model("graphs_a").source
FAULTY = TRUTH.replace("n not in n.^adj", "n not in n.adj", 1)


@pytest.fixture
def task():
    return RepairTask.from_source(FAULTY)


class TestBeafixPruningAblation:
    def test_pruning_on(self, benchmark, task):
        result = benchmark.pedantic(
            lambda: BeAFix(BeAFixConfig(prune=True)).repair(task),
            rounds=3,
            iterations=1,
        )
        print(f"\npruned search: {result.oracle_queries} oracle queries, "
              f"{result.candidates_explored} candidates")
        assert result.fixed

    def test_pruning_off(self, benchmark, task):
        result = benchmark.pedantic(
            lambda: BeAFix(
                BeAFixConfig(prune=False, max_oracle_queries=500)
            ).repair(task),
            rounds=3,
            iterations=1,
        )
        print(f"\nunpruned search: {result.oracle_queries} oracle queries, "
              f"{result.candidates_explored} candidates")
        assert result.fixed

    def test_pruning_cuts_oracle_queries(self, task):
        pruned = BeAFix(BeAFixConfig(prune=True)).repair(task)
        unpruned = BeAFix(
            BeAFixConfig(prune=False, max_oracle_queries=500)
        ).repair(task)
        print(
            f"\noracle queries pruned={pruned.oracle_queries} "
            f"unpruned={unpruned.oracle_queries}"
        )
        assert pruned.oracle_queries <= unpruned.oracle_queries


class TestIcebarBudgetAblation:
    @pytest.mark.parametrize("refinements", [1, 2, 4])
    def test_refinement_sweep(self, benchmark, task, refinements):
        suite = generate_suite(Analyzer(TRUTH), positives=2, negatives=2, seed=9)
        config = IcebarConfig(max_refinements=refinements)
        result = benchmark.pedantic(
            lambda: Icebar(suite, config).repair(task), rounds=1, iterations=1
        )
        fixed_text = result.final_source(task)
        print(
            f"\nrefinements={refinements}: status={result.status.value} "
            f"REP={rep(fixed_text, TRUTH)}"
        )


class TestMultiRoundBudgetAblation:
    @pytest.mark.parametrize("rounds", [1, 2, 3])
    def test_round_sweep(self, benchmark, task, rounds):
        def attempt():
            wins = 0
            for seed in range(4):
                tool = MultiRoundLLM(
                    MockGPT(seed=seed, profile=GPT4_PROFILE),
                    FeedbackLevel.GENERIC,
                    config=MultiRoundConfig(max_rounds=rounds),
                )
                result = tool.repair(task)
                wins += rep(result.final_source(task), TRUTH)
            return wins

        wins = benchmark.pedantic(attempt, rounds=1, iterations=1)
        print(f"\nrounds={rounds}: {wins}/4 repaired")

    def test_more_rounds_do_not_hurt(self, task):
        def wins_with(rounds):
            total = 0
            for seed in range(5):
                tool = MultiRoundLLM(
                    MockGPT(seed=seed, profile=GPT4_PROFILE),
                    FeedbackLevel.GENERIC,
                    config=MultiRoundConfig(max_rounds=rounds),
                )
                total += rep(tool.repair(task).final_source(task), TRUTH)
            return total

        assert wins_with(3) >= wins_with(1)
